// Live telemetry plane tests (docs/OBSERVABILITY.md, "Live telemetry"):
// the HealthMachine and RollingWindow unit semantics with explicit clocks,
// the embedded HTTP server's routing, and the two integration contracts —
// concurrent scrapes during a 4-shard x 4-worker replay return parseable
// monotonic counters, and a post-quiescence scrape is byte-identical to
// the WriteMetricsProm file export.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "core/runtime.h"
#include "fault/fault_plan.h"
#include "net/trace_gen.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/window.h"
#include "policy/parser.h"

namespace superfe {
namespace {

using obs::HealthMachine;
using obs::HealthState;
using obs::RollingWindow;

Policy Parse(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

int StatusCode(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + 9);
}

// First value of an unlabelled sample line "name <value>" in a scrape.
double SampleValue(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  const std::string prefix = name + " ";
  while (std::getline(in, line)) {
    if (line.compare(0, prefix.size(), prefix) == 0) {
      return std::stod(line.substr(prefix.size()));
    }
  }
  return -1.0;
}

// ---------------------------------------------------------------------------
// HealthMachine: pure state-machine semantics with an explicit clock.

TEST(HealthMachineTest, StartsOkAndFirstUpdateOnlyBaselines) {
  HealthMachine hm(1'000'000'000);  // 1 s hold.
  EXPECT_EQ(hm.Evaluate(0), HealthState::kOk);
  // Pre-existing totals at the first feed must not count as fresh faults.
  hm.Update({.fault_events = 100, .watchdog_stalls = 5}, 10);
  EXPECT_EQ(hm.Evaluate(20), HealthState::kOk);
  hm.Update({.fault_events = 100, .watchdog_stalls = 5}, 30);
  EXPECT_EQ(hm.Evaluate(40), HealthState::kOk);
}

TEST(HealthMachineTest, FaultDeltaDegradesThenDecays) {
  HealthMachine hm(1'000'000'000);
  hm.Update({}, 0);
  hm.Update({.fault_events = 1}, 100);
  EXPECT_EQ(hm.Evaluate(200), HealthState::kDegraded);
  // Still inside the hold window.
  EXPECT_EQ(hm.Evaluate(100 + 999'999'999), HealthState::kDegraded);
  // Past it: recovers without an explicit reset.
  EXPECT_EQ(hm.Evaluate(100 + 1'000'000'001), HealthState::kOk);

  const auto transitions = hm.Transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].from, HealthState::kOk);
  EXPECT_EQ(transitions[0].to, HealthState::kDegraded);
  EXPECT_EQ(transitions[1].from, HealthState::kDegraded);
  EXPECT_EQ(transitions[1].to, HealthState::kOk);
}

TEST(HealthMachineTest, StallOutranksDegraded) {
  HealthMachine hm(1'000'000'000);
  hm.Update({}, 0);
  hm.Update({.fault_events = 3, .watchdog_stalls = 1}, 50);
  EXPECT_EQ(hm.Evaluate(60), HealthState::kStalled);
  // Stall mark decays like fault marks do.
  EXPECT_EQ(hm.Evaluate(50 + 1'000'000'001), HealthState::kOk);
}

TEST(HealthMachineTest, DegradedRunCompletionCountsAsFault) {
  HealthMachine hm(1'000'000'000);
  hm.OnRunComplete(/*degraded=*/false, 10);
  EXPECT_EQ(hm.Evaluate(20), HealthState::kOk);
  hm.OnRunComplete(/*degraded=*/true, 30);
  EXPECT_EQ(hm.Evaluate(40), HealthState::kDegraded);
}

// ---------------------------------------------------------------------------
// RollingWindow: exact rates from synthetic counters and explicit ticks.

TEST(RollingWindowTest, ExactRatesFromSyntheticCounters) {
  obs::MetricsRegistry registry;
  auto* packets = registry.GetCounter("superfe_replay_packets_total");
  auto* offered = registry.GetCounter("superfe_mgpv_cells_out_total");
  auto* dropped = registry.GetCounter("superfe_cluster_cells_dropped_total");

  RollingWindow window(&registry, /*epochs=*/4, /*interval_ms=*/1000);
  window.Tick(0);
  EXPECT_FALSE(window.Current().valid);  // One epoch is no window.

  packets->Inc(100'000);
  offered->Inc(50'000);
  dropped->Inc(5'000);
  window.Tick(1'000'000'000);  // Exactly one second later.

  const RollingWindow::Rates rates = window.Current();
  ASSERT_TRUE(rates.valid);
  EXPECT_DOUBLE_EQ(rates.span_s, 1.0);
  EXPECT_DOUBLE_EQ(rates.pps, 100'000.0);
  EXPECT_DOUBLE_EQ(rates.drop_ratio, 5'000.0 / 50'000.0);

  // The derived gauges are published in the registry under the window label.
  auto* pps_gauge =
      registry.GetGauge("superfe_rate_pps", {{"window", window.window_label()}});
  EXPECT_DOUBLE_EQ(pps_gauge->Value(), 100'000.0);
}

TEST(RollingWindowTest, RingEvictsOldestEpoch) {
  obs::MetricsRegistry registry;
  auto* packets = registry.GetCounter("superfe_replay_packets_total");

  RollingWindow window(&registry, /*epochs=*/2, /*interval_ms=*/1000);
  window.Tick(0);
  packets->Inc(1'000);
  window.Tick(1'000'000'000);
  packets->Inc(9'000);
  window.Tick(2'000'000'000);

  // With a 2-epoch ring the t=0 snapshot is gone: the window is the last
  // second only (9000 packets), not the 10000-over-2s average.
  const RollingWindow::Rates rates = window.Current();
  ASSERT_TRUE(rates.valid);
  EXPECT_DOUBLE_EQ(rates.span_s, 1.0);
  EXPECT_DOUBLE_EQ(rates.pps, 9'000.0);
}

TEST(RollingWindowTest, WindowLabelFormatting) {
  EXPECT_EQ(RollingWindow::FormatWindowLabel(64), "64ms");
  EXPECT_EQ(RollingWindow::FormatWindowLabel(10'000), "10s");
}

// ---------------------------------------------------------------------------
// TelemetryServer: routing, status codes, and lifecycle.

TEST(TelemetryServerTest, RoutesEndpointsAndRejectsTheRest) {
  obs::TelemetryOptions options;
  options.port = 0;
  options.write_metrics = [](std::ostream& out) { out << "fake_metric 1\n"; };
  options.write_status = [](std::ostream& out) { out << "{}"; };
  auto server = obs::TelemetryServer::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();
  ASSERT_GT(port, 0);

  std::string response = HttpGet(port, "/metrics");
  EXPECT_EQ(StatusCode(response), 200);
  EXPECT_EQ(HttpBody(response), "fake_metric 1\n");

  response = HttpGet(port, "/healthz");  // No HealthMachine: always ok.
  EXPECT_EQ(StatusCode(response), 200);
  EXPECT_EQ(HttpBody(response), "ok\n");

  response = HttpGet(port, "/status");
  EXPECT_EQ(StatusCode(response), 200);
  EXPECT_EQ(HttpBody(response), "{}");

  response = HttpGet(port, "/nope");
  EXPECT_EQ(StatusCode(response), 404);

  // Query strings are stripped before routing.
  response = HttpGet(port, "/metrics?format=prometheus");
  EXPECT_EQ(StatusCode(response), 200);

  // Non-GET methods are refused.
  const int fd = TcpConnect(port, /*io_timeout_ms=*/2000);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string post_response;
  RecvAll(fd, &post_response, 1 << 20);
  CloseFd(fd);
  EXPECT_EQ(StatusCode(post_response), 405);

  EXPECT_GE((*server)->requests_served(), 4u);
  EXPECT_GE((*server)->requests_rejected(), 2u);

  (*server)->Stop();
  (*server)->Stop();  // Idempotent.
  EXPECT_EQ(HttpGet(port, "/metrics"), "");  // Nothing listening anymore.
}

TEST(TelemetryServerTest, HealthzReflectsMachineState) {
  obs::HealthMachine health(/*hold_ns=*/60'000'000'000ull);  // Long hold.
  obs::TelemetryOptions options;
  options.port = 0;
  options.write_metrics = [](std::ostream& out) { out << "x 1\n"; };
  options.write_status = [](std::ostream& out) { out << "{}"; };
  options.health = &health;
  auto server = obs::TelemetryServer::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  std::string response = HttpGet(port, "/healthz");
  EXPECT_EQ(StatusCode(response), 200);
  EXPECT_EQ(HttpBody(response), "ok\n");

  health.OnRunComplete(/*degraded=*/true,
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
  response = HttpGet(port, "/healthz");
  EXPECT_EQ(StatusCode(response), 503);
  EXPECT_EQ(HttpBody(response), "degraded\n");
}

// ---------------------------------------------------------------------------
// Integration: scraping a live 4-shard x 4-worker run.

TEST(TelemetryIntegrationTest, LiveScrapesAreMonotonicAndFinalScrapeIsByteExact) {
  RuntimeConfig config;
  config.switch_shards = 4;
  config.worker_threads = 4;
  config.obs.telemetry_port = 0;  // Ephemeral.
  config.obs.run_label = "telemetry_test";
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), config);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  const uint16_t port = (*runtime)->telemetry_port();
  ASSERT_GT(port, 0);

  const Trace trace = GenerateTrace(CampusProfile(), 200'000, 5);
  CollectingFeatureSink sink;
  std::atomic<bool> running{true};
  RunReport report;
  std::thread run_thread([&] {
    report = (*runtime)->Run(trace, &sink);
    running.store(false);
  });

  // Scrape continuously while the pipeline is hot. Every response must be
  // well-formed and the replay counter must never move backwards.
  double last_packets = 0.0;
  uint32_t scrapes = 0;
  while (running.load()) {
    const std::string response = HttpGet(port, "/metrics");
    if (response.empty()) {
      continue;  // Transient accept backlog; the server serves one at a time.
    }
    ASSERT_EQ(StatusCode(response), 200);
    const std::string body = HttpBody(response);
    const double packets = SampleValue(body, "superfe_replay_packets_total");
    ASSERT_GE(packets, last_packets) << "counter went backwards mid-run";
    last_packets = packets;
    ++scrapes;
    EXPECT_EQ(StatusCode(HttpGet(port, "/healthz")), 200);
    EXPECT_EQ(StatusCode(HttpGet(port, "/status")), 200);
  }
  run_thread.join();
  EXPECT_GT(scrapes, 0u);
  EXPECT_EQ(report.offered.packets, trace.size());

  // The exactness contract, extended to the wire: once the run has hit its
  // final quiescence edge, a scrape is byte-identical to the file export.
  const std::string final_scrape = HttpBody(HttpGet(port, "/metrics"));
  std::ostringstream file_export;
  ASSERT_TRUE((*runtime)->WriteMetricsProm(file_export));
  EXPECT_EQ(final_scrape, file_export.str());
  EXPECT_EQ(SampleValue(final_scrape, "superfe_replay_packets_total"),
            static_cast<double>(trace.size()));

  // /status stays serviceable post-run.
  const std::string status = HttpBody(HttpGet(port, "/status"));
  EXPECT_NE(status.find("\"health\""), std::string::npos);
  EXPECT_NE(status.find("\"telemetry_test\""), std::string::npos);
}

TEST(TelemetryIntegrationTest, HealthzFlipsTo503UnderCrashPlanAndRecovers) {
  auto plan = FaultPlan::Parse("crash member=1 at_packet=25000 detect_ms=2\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  RuntimeConfig config;
  config.switch_shards = 2;
  config.worker_threads = 4;
  config.fault.plan = *plan;
  config.obs.telemetry_port = 0;
  // Hold = 50 ms x 20 epochs = 1 s: long enough that the post-run scrape
  // reliably lands inside the degraded window, short enough to watch the
  // decay back to 200 without stalling the suite.
  config.obs.sample_interval_ms = 50;
  config.obs.window_epochs = 20;
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), config);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  const uint16_t port = (*runtime)->telemetry_port();
  ASSERT_GT(port, 0);

  EXPECT_EQ(StatusCode(HttpGet(port, "/healthz")), 200);

  const Trace trace = GenerateTrace(EnterpriseProfile(), 60'000, 7);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  ASSERT_TRUE(report.fault.degraded);  // The crash bit.

  // Immediately after the degraded completion /healthz must refuse.
  std::string response = HttpGet(port, "/healthz");
  EXPECT_EQ(StatusCode(response), 503);
  EXPECT_EQ(HttpBody(response), "degraded\n");

  // ...and recover to 200 once the fault mark ages past the hold window.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int code = 503;
  while (code != 200 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    code = StatusCode(HttpGet(port, "/healthz"));
  }
  EXPECT_EQ(code, 200);

  // The trajectory is recorded: ok -> degraded -> ok, in order.
  bool saw_degrade = false, saw_recover = false;
  for (const auto& t : (*runtime)->health()->Transitions()) {
    if (t.from == HealthState::kOk && t.to == HealthState::kDegraded) {
      saw_degrade = true;
    }
    if (saw_degrade && t.to == HealthState::kOk) {
      saw_recover = true;
    }
  }
  EXPECT_TRUE(saw_degrade);
  EXPECT_TRUE(saw_recover);
}

}  // namespace
}  // namespace superfe
