#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "nicsim/exec.h"
#include "policy/compile.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const ExecOptions kExact = [] { ExecOptions o; o.nic_arithmetic = false; return o; }();
const ExecOptions kNic = [] { ExecOptions o; o.nic_arithmetic = true; return o; }();

MgpvCell Cell(double size, uint64_t ts_ns, Direction dir = Direction::kForward) {
  MgpvCell cell;
  cell.size = static_cast<uint16_t>(size);
  cell.full_timestamp_ns = ts_ns;
  cell.tstamp = static_cast<uint32_t>(ts_ns);
  cell.direction = dir;
  cell.fg_tuple = {1, 2, 3, 4, kProtoTcp};
  return cell;
}

ExecPlan PlanFor(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = ExecPlan::FromProgram(compiled->nic_program);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(ReducerTest, SumMinMax) {
  Reducer sum(ReduceSpec{ReduceFn::kSum}, kExact, false);
  Reducer mn(ReduceSpec{ReduceFn::kMin}, kExact, false);
  Reducer mx(ReduceSpec{ReduceFn::kMax}, kExact, false);
  for (double v : {5.0, 1.0, 9.0, 3.0}) {
    sum.Update(v, 0.0, Direction::kForward);
    mn.Update(v, 0.0, Direction::kForward);
    mx.Update(v, 0.0, Direction::kForward);
  }
  std::vector<double> out;
  sum.Emit(out);
  mn.Emit(out);
  mx.Emit(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 18.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 9.0);
}

TEST(ReducerTest, MeanVarStdExact) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  Reducer mean(ReduceSpec{ReduceFn::kMean}, kExact, false);
  Reducer var(ReduceSpec{ReduceFn::kVar}, kExact, false);
  Reducer std_r(ReduceSpec{ReduceFn::kStd}, kExact, false);
  for (double x : xs) {
    mean.Update(x, 0.0, Direction::kForward);
    var.Update(x, 0.0, Direction::kForward);
    std_r.Update(x, 0.0, Direction::kForward);
  }
  std::vector<double> out;
  mean.Emit(out);
  var.Emit(out);
  std_r.Emit(out);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
}

TEST(ReducerTest, NicArithmeticCloseToExact) {
  Rng rng(1);
  Reducer exact(ReduceSpec{ReduceFn::kMean}, kExact, false);
  Reducer nic(ReduceSpec{ReduceFn::kMean}, kNic, false);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Bernoulli(0.8) ? 1514.0 : 64.0;
    exact.Update(x, i * 0.001, Direction::kForward);
    nic.Update(x, i * 0.001, Direction::kForward);
  }
  std::vector<double> e;
  std::vector<double> n;
  exact.Emit(e);
  nic.Emit(n);
  EXPECT_LT(RelativeError(n[0], e[0]), 0.04);
}

TEST(ReducerTest, DampedSumIsWeightForOnes) {
  ReduceSpec spec{ReduceFn::kSum};
  spec.decay_lambda = 1.0;
  Reducer r(spec, kExact, false);
  r.Update(1.0, 0.0, Direction::kForward);
  r.Update(1.0, 1.0, Direction::kForward);  // First sample decayed to 0.5.
  std::vector<double> out;
  r.Emit(out);
  EXPECT_NEAR(out[0], 1.5, 1e-9);
}

TEST(ReducerTest, CardinalityViaHll) {
  Reducer r(ReduceSpec{ReduceFn::kCard}, kNic, false);
  for (int rep = 0; rep < 10; ++rep) {
    for (int v = 0; v < 40; ++v) {
      r.Update(v, 0.0, Direction::kForward);
    }
  }
  std::vector<double> out;
  r.Emit(out);
  EXPECT_NEAR(out[0], 40.0, 12.0);
}

TEST(ReducerTest, ArrayPadsToLimit) {
  ReduceSpec spec{ReduceFn::kArray};
  spec.array_limit = 5;
  Reducer r(spec, kNic, false);
  r.Update(1.0, 0.0, Direction::kForward);
  r.Update(-1.0, 0.0, Direction::kForward);
  std::vector<double> out;
  r.Emit(out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], -1.0);
  EXPECT_EQ(out[2], 0.0);
}

TEST(ReducerTest, ArrayTruncatesAtLimit) {
  ReduceSpec spec{ReduceFn::kArray};
  spec.array_limit = 3;
  Reducer r(spec, kNic, false);
  for (int i = 0; i < 10; ++i) {
    r.Update(i, 0.0, Direction::kForward);
  }
  std::vector<double> out;
  r.Emit(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 2.0);
}

TEST(ReducerTest, HistogramCounts) {
  ReduceSpec spec{ReduceFn::kHist};
  spec.param0 = 10.0;
  spec.param1 = 4.0;
  Reducer r(spec, kNic, false);
  r.Update(5.0, 0.0, Direction::kForward);
  r.Update(15.0, 0.0, Direction::kForward);
  r.Update(15.0, 0.0, Direction::kForward);
  std::vector<double> out;
  r.Emit(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 2.0);
}

TEST(ReducerTest, PdfCdfNormalized) {
  ReduceSpec pdf_spec{ReduceFn::kPdf};
  pdf_spec.param0 = 10.0;
  pdf_spec.param1 = 4.0;
  ReduceSpec cdf_spec = pdf_spec;
  cdf_spec.fn = ReduceFn::kCdf;
  Reducer pdf(pdf_spec, kNic, false);
  Reducer cdf(cdf_spec, kNic, false);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(0, 40);
    pdf.Update(v, 0.0, Direction::kForward);
    cdf.Update(v, 0.0, Direction::kForward);
  }
  std::vector<double> p;
  std::vector<double> c;
  pdf.Emit(p);
  cdf.Emit(c);
  double sum = 0.0;
  for (double v : p) {
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(c.back(), 1.0, 1e-9);
}

TEST(ReducerTest, PercentileLogScale) {
  ReduceSpec spec{ReduceFn::kPercent};
  spec.param0 = 0.5;
  Reducer r(spec, kNic, false);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    r.Update(rng.UniformDouble(0, 1000), 0.0, Direction::kForward);
  }
  std::vector<double> out;
  r.Emit(out);
  // Log-scale estimate of the median of U(0,1000): within its bucket
  // (256-512 covers the true 500).
  EXPECT_GT(out[0], 200.0);
  EXPECT_LT(out[0], 800.0);
}

TEST(ReducerTest, BidirectionalSplitsByDirection) {
  ReduceSpec spec{ReduceFn::kMag};
  Reducer r(spec, kExact, false);
  for (int i = 0; i < 100; ++i) {
    r.Update(3.0, i * 0.001, Direction::kForward);
    r.Update(4.0, i * 0.001, Direction::kBackward);
  }
  std::vector<double> out;
  r.Emit(out);
  EXPECT_NEAR(out[0], 5.0, 1e-6);
}

TEST(SynthTest, NormScalesToUnitMax) {
  auto out = ApplySynth(SynthStep{SynthFn::kNorm, 0}, {2.0, -4.0, 1.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(SynthTest, NormOfZerosIsZeros) {
  auto out = ApplySynth(SynthStep{SynthFn::kNorm, 0}, {0.0, 0.0});
  EXPECT_EQ(out[0], 0.0);
}

TEST(SynthTest, SampleResamplesLinearly) {
  auto out = ApplySynth(SynthStep{SynthFn::kSample, 3}, {0.0, 10.0, 20.0, 30.0, 40.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 20.0);
  EXPECT_DOUBLE_EQ(out[2], 40.0);
}

TEST(SynthTest, SampleOfEmptyIsZeros) {
  auto out = ApplySynth(SynthStep{SynthFn::kSample, 4}, {});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0.0);
}

TEST(SynthTest, MarkerEmitsCumulativeAtSignChanges) {
  // +100 +200 -50 -50 +10 => sign changes after 300 and after 200; final 210.
  auto out = ApplySynth(SynthStep{SynthFn::kMarker, 0}, {100, 200, -50, -50, 10});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 300.0);
  EXPECT_DOUBLE_EQ(out[1], 200.0);
  EXPECT_DOUBLE_EQ(out[2], 210.0);
}

TEST(ExecPlanTest, ResolvesFieldsAndGranularities) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(host, channel)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean], host)
  .reduce(ipt, [f_mean], channel)
  .collect(pkt)
)");
  ASSERT_EQ(plan.per_granularity.size(), 2u);
  EXPECT_EQ(plan.per_granularity[0].granularity, Granularity::kHost);
  EXPECT_EQ(plan.per_granularity[0].reduces.size(), 1u);
  EXPECT_EQ(plan.per_granularity[1].reduces.size(), 1u);
  EXPECT_EQ(plan.maps.size(), 2u);
  EXPECT_EQ(plan.field_count, 6);  // 4 builtins + one, ipt.
}

TEST(ExecTest, MapIptComputesGaps) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(ipt, [f_max, f_min])
  .collect(flow)
)");
  GroupState group = GroupState::Make(plan, 0, kExact);
  UpdateGroup(plan, 0, group, Cell(100, 0));
  UpdateGroup(plan, 0, group, Cell(100, 1000));
  UpdateGroup(plan, 0, group, Cell(100, 4000));
  std::vector<double> out;
  EmitGroupFeatures(plan, 0, group, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3000.0);  // Max gap.
  EXPECT_DOUBLE_EQ(out[1], 0.0);     // First packet has ipt 0.
}

TEST(ExecTest, MapDirectionSignsValues) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(dir, one, f_direction)
  .reduce(dir, [f_array{4}])
  .collect(flow)
)");
  GroupState group = GroupState::Make(plan, 0, kExact);
  UpdateGroup(plan, 0, group, Cell(100, 0, Direction::kForward));
  UpdateGroup(plan, 0, group, Cell(100, 1, Direction::kBackward));
  UpdateGroup(plan, 0, group, Cell(100, 2, Direction::kBackward));
  std::vector<double> out;
  EmitGroupFeatures(plan, 0, group, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
  EXPECT_DOUBLE_EQ(out[2], -1.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);  // Padding.
}

TEST(ExecTest, MapBurstTracksRuns) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(flow)
  .map(burst, _, f_burst)
  .reduce(burst, [f_max])
  .collect(flow)
)");
  GroupState group = GroupState::Make(plan, 0, kExact);
  UpdateGroup(plan, 0, group, Cell(100, 0, Direction::kForward));
  UpdateGroup(plan, 0, group, Cell(100, 1, Direction::kForward));
  UpdateGroup(plan, 0, group, Cell(100, 2, Direction::kForward));
  UpdateGroup(plan, 0, group, Cell(100, 3, Direction::kBackward));
  std::vector<double> out;
  EmitGroupFeatures(plan, 0, group, out);
  EXPECT_DOUBLE_EQ(out[0], 3.0);  // Longest same-direction run.
}

TEST(ExecTest, MapSpeedBytesPerSecond) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(flow)
  .map(speed, size, f_speed)
  .reduce(speed, [f_max])
  .collect(flow)
)");
  GroupState group = GroupState::Make(plan, 0, kExact);
  UpdateGroup(plan, 0, group, Cell(1000, 0));
  UpdateGroup(plan, 0, group, Cell(1000, 1000000));  // 1 ms gap.
  std::vector<double> out;
  EmitGroupFeatures(plan, 0, group, out);
  EXPECT_NEAR(out[0], 1000.0 / 0.001, 1e-6);
}

TEST(ExecTest, GranularityWidthsSum) {
  const ExecPlan plan = PlanFor(R"(
pktstream
  .groupby(host, channel)
  .reduce(size, [f_mean, f_var], host)
  .reduce(size, [ft_hist{100, 8}], channel)
  .collect(pkt)
)");
  EXPECT_EQ(GranularityFeatureWidth(plan, 0), 2u);
  EXPECT_EQ(GranularityFeatureWidth(plan, 1), 8u);
}

}  // namespace
}  // namespace superfe
