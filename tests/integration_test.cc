// Cross-module integration tests: full pipeline invariants that no single
// module test covers — conservation of packets through switch+NIC,
// consistency under cache-geometry changes, replay amplification, failure
// injection (tiny caches, pathological traffic).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/policies.h"
#include "core/runtime.h"
#include "core/software_extractor.h"
#include "net/attack_gen.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

Policy Parse(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

const char* kCountPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(flow)
)";

// The per-flow packet counts summed over all emitted vectors must equal the
// number of packets fed in — MGPV batching must not lose or duplicate cells
// regardless of geometry.
class GeometryConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryConservationTest, PacketCountsConserved) {
  struct Geometry {
    uint32_t short_buffers, short_size, long_buffers, long_size;
    uint64_t aging_ns;
  };
  const Geometry kGeometries[] = {
      {16384, 4, 4096, 20, 10000000},  // Prototype defaults.
      {64, 2, 4, 4, 0},                // Tiny cache, no aging: constant churn.
      {1, 1, 0, 1, 0},                 // Degenerate single entry.
      {256, 8, 16, 40, 1000000},       // Aggressive aging.
  };
  const Geometry& geometry = kGeometries[GetParam()];

  RuntimeConfig config;
  config.mgpv.short_buffers = geometry.short_buffers;
  config.mgpv.short_size = geometry.short_size;
  config.mgpv.long_buffers = geometry.long_buffers;
  config.mgpv.long_size = geometry.long_size;
  config.mgpv.aging_timeout_ns = geometry.aging_ns;
  auto runtime = SuperFeRuntime::Create(Parse(kCountPolicy), config);
  ASSERT_TRUE(runtime.ok());

  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 77);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);

  EXPECT_EQ(report.nic.cells, trace.size());
  double total = 0.0;
  for (const auto& v : sink.vectors()) {
    ASSERT_EQ(v.values.size(), 1u);
    total += v.values[0];
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(trace.size()));
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometryConservationTest, ::testing::Range(0, 4));

TEST(IntegrationTest, SumsIdenticalAcrossGeometries) {
  // Per-flow sums (order-insensitive features) must be bit-identical no
  // matter how the cache slices the stream into reports.
  const Policy policy = Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_sum, f_max, f_min])
  .collect(flow)
)");
  const Trace trace = GenerateTrace(CampusProfile(), 15000, 5);

  auto run_with = [&](uint32_t short_buffers, uint32_t short_size) {
    RuntimeConfig config;
    config.mgpv.short_buffers = short_buffers;
    config.mgpv.short_size = short_size;
    config.nic.exec.nic_arithmetic = false;
    auto runtime = SuperFeRuntime::Create(policy, config);
    CollectingFeatureSink sink;
    (*runtime)->Run(trace, &sink);
    std::map<std::string, std::vector<double>> by_key;
    for (const auto& v : sink.vectors()) {
      by_key[std::string(reinterpret_cast<const char*>(v.group.bytes.data()),
                         v.group.length)] = v.values;
    }
    return by_key;
  };

  const auto big = run_with(16384, 4);
  const auto tiny = run_with(32, 1);
  ASSERT_EQ(big.size(), tiny.size());
  for (const auto& [key, values] : big) {
    const auto it = tiny.find(key);
    ASSERT_NE(it, tiny.end());
    ASSERT_EQ(values.size(), it->second.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_DOUBLE_EQ(values[i], it->second[i]);
    }
  }
}

TEST(IntegrationTest, AmplificationMultipliesFlows) {
  auto runtime = SuperFeRuntime::Create(Parse(kCountPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 5000, 9);
  CollectingFeatureSink base_sink;
  (*runtime)->Run(trace, &base_sink);

  RuntimeConfig amp_config;
  amp_config.replay.amplification = 3;
  auto amp_runtime = SuperFeRuntime::Create(Parse(kCountPolicy), amp_config);
  CollectingFeatureSink amp_sink;
  const RunReport amp_report = (*amp_runtime)->Run(trace, &amp_sink);

  EXPECT_EQ(amp_report.offered.packets, trace.size() * 3);
  EXPECT_EQ(amp_sink.vectors().size(), base_sink.vectors().size() * 3);
}

TEST(IntegrationTest, UdpOnlyPolicySeesNoTcp) {
  auto runtime = SuperFeRuntime::Create(Parse(R"(
pktstream
  .filter(udp.exist)
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)"),
                                        RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  // All-TCP trace -> zero vectors.
  Trace trace;
  Rng rng(3);
  FiveTuple tuple{MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  for (const auto& pkt : GenerateFlow(tuple, 50, 0, 100.0, {{500, 1.0}}, 0.6, rng)) {
    trace.Add(pkt);
  }
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  EXPECT_EQ(report.switch_stats.packets_filtered, trace.size());
  EXPECT_TRUE(sink.vectors().empty());
}

TEST(IntegrationTest, AttackTraceThroughKitsunePipeline) {
  AttackConfig attack;
  attack.type = AttackType::kOsScan;
  attack.attack_packets = 3000;
  const LabeledTrace lt = GenerateAttackTrace(attack, EnterpriseProfile(), 10000, 21);

  auto runtime = SuperFeRuntime::Create(KitsunePolicy(), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  CollectingFeatureSink sink;
  (*runtime)->Run(lt.trace, &sink);
  // Per-packet collection: one 115-dim vector per packet.
  EXPECT_EQ(sink.vectors().size(), lt.trace.size());
  for (const auto& v : sink.vectors()) {
    ASSERT_EQ(v.values.size(), 115u);
  }
}

TEST(IntegrationTest, RerunningRuntimeIsClean) {
  // Flush must fully reset state: running the same trace twice produces
  // identical vector multisets.
  auto runtime = SuperFeRuntime::Create(Parse(kCountPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(CampusProfile(), 8000, 17);

  auto run_once = [&]() {
    CollectingFeatureSink sink;
    (*runtime)->Run(trace, &sink);
    std::multiset<double> counts;
    for (const auto& v : sink.vectors()) {
      counts.insert(v.values[0]);
    }
    return counts;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST(IntegrationTest, SoftwareAndPipelineAgreeOnHistogram) {
  const Policy policy = Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [ft_hist{100, 16}])
  .collect(flow)
)");
  const Trace trace = GenerateTrace(EnterpriseProfile(), 10000, 33);

  RuntimeConfig config;
  config.nic.exec.nic_arithmetic = false;
  auto runtime = SuperFeRuntime::Create(policy, config);
  CollectingFeatureSink pipeline_sink;
  (*runtime)->Run(trace, &pipeline_sink);

  auto compiled = Compile(policy);
  auto software = SoftwareExtractor::Create(*compiled);
  CollectingFeatureSink software_sink;
  (*software)->Run(trace, &software_sink, SoftwareDeployment{});

  auto total_of = [](const CollectingFeatureSink& sink) {
    double total = 0.0;
    for (const auto& v : sink.vectors()) {
      for (double x : v.values) {
        total += x;
      }
    }
    return total;
  };
  // Histogram counts are conserved: both paths bucket every packet once.
  EXPECT_DOUBLE_EQ(total_of(pipeline_sink), total_of(software_sink));
  EXPECT_DOUBLE_EQ(total_of(pipeline_sink), static_cast<double>(trace.size()));
}

TEST(IntegrationTest, PathologicalSingleFlowHeavyTraffic) {
  // One elephant flow: exercises the long-buffer path continuously.
  auto runtime = SuperFeRuntime::Create(Parse(kCountPolicy), RuntimeConfig{});
  Trace trace;
  Rng rng(41);
  FiveTuple tuple{MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  for (const auto& pkt : GenerateFlow(tuple, 50000, 0, 10.0, {{1514, 1.0}}, 0.6, rng)) {
    trace.Add(pkt);
  }
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  ASSERT_EQ(sink.vectors().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.vectors()[0].values[0], 50000.0);
  // Long buffers were actually used.
  EXPECT_GT(report.mgpv.long_allocs, 0u);
}

TEST(IntegrationTest, ManyTinyFlowsChurnTheCache) {
  // 1-packet flows: every entry is a new group; collision eviction churns.
  auto runtime = SuperFeRuntime::Create(Parse(kCountPolicy), RuntimeConfig{});
  Trace trace;
  for (uint32_t i = 0; i < 50000; ++i) {
    PacketRecord pkt;
    pkt.tuple = {MakeIp(10, 0, 0, 0) + i, MakeIp(172, 16, 0, 1), 1000, 80, kProtoTcp};
    pkt.timestamp_ns = i * 1000;
    pkt.wire_bytes = 64;
    trace.Add(pkt);
  }
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  EXPECT_EQ(sink.vectors().size(), 50000u);
  EXPECT_EQ(report.nic.cells, 50000u);
}

}  // namespace
}  // namespace superfe
