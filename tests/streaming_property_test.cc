// Property-style tests of the streaming algorithms: invariants that must
// hold across randomized inputs (order independence of decayed sums,
// division-free drain exactness, quantization error bounds, histogram
// conservation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "streaming/batch.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/simd.h"
#include "streaming/welford.h"

namespace superfe {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, DampedSumsAreOrderIndependent) {
  // MGPV delivers a group's two directions as interleaved bursts; the
  // late-sample scaling must make the damped state independent of arrival
  // order (same multiset of (value, timestamp) pairs).
  Rng rng(GetParam());
  std::vector<std::pair<double, double>> samples;  // (value, t).
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.UniformDouble(0.0001, 0.01);
    samples.emplace_back(rng.UniformDouble(64, 1500), t);
  }

  DampedStats in_order(1.0);
  for (const auto& [x, ts] : samples) {
    in_order.Add(x, ts);
  }

  // Burst-shuffled: odd-index samples delayed to the end (two interleaved
  // streams arriving as two bursts).
  DampedStats shuffled(1.0);
  for (size_t i = 0; i < samples.size(); i += 2) {
    shuffled.Add(samples[i].first, samples[i].second);
  }
  for (size_t i = 1; i < samples.size(); i += 2) {
    shuffled.Add(samples[i].first, samples[i].second);
  }

  EXPECT_NEAR(shuffled.weight(), in_order.weight(), in_order.weight() * 1e-9);
  EXPECT_NEAR(shuffled.mean(), in_order.mean(), std::fabs(in_order.mean()) * 1e-9);
  EXPECT_NEAR(shuffled.variance(), in_order.variance(),
              std::max(in_order.variance() * 1e-6, 1e-9));
}

TEST_P(SeededTest, NicWelfordTracksExactWithinUnits) {
  // The residue-drain division elimination must keep the integer mean
  // within a few units of the exact recurrence at all times.
  Rng rng(GetParam() ^ 0x11);
  NicWelfordStats nic;
  WelfordStats exact;
  for (int i = 0; i < 30000; ++i) {
    const int64_t x = 64 + static_cast<int64_t>(rng.UniformU64(1450));
    nic.Add(x);
    exact.Add(static_cast<double>(x));
    if (i > 100 && i % 1000 == 0) {
      EXPECT_NEAR(nic.mean(), exact.mean(), 3.0) << "at sample " << i;
    }
  }
  EXPECT_LT(RelativeError(nic.variance(), exact.variance()), 0.05);
}

TEST_P(SeededTest, FixedPointDampedWithinFourPercent) {
  Rng rng(GetParam() ^ 0x22);
  const double lambda = std::exp(rng.UniformDouble(std::log(0.01), std::log(5.0)));
  DampedStats exact(lambda, DampedMode::kExactDouble);
  DampedStats fixed(lambda, DampedMode::kNicFixedPoint);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.UniformDouble(64, 1500);
    t += rng.UniformDouble(0.0001, 0.02);
    exact.Add(x, t);
    fixed.Add(x, t);
  }
  EXPECT_LT(RelativeError(fixed.mean(), exact.mean()), 0.04) << "lambda " << lambda;
  EXPECT_LT(RelativeError(fixed.weight(), exact.weight()), 0.04) << "lambda " << lambda;
  EXPECT_LT(RelativeError(fixed.stddev(), exact.stddev(), /*eps=*/1.0), 0.06)
      << "lambda " << lambda;
}

TEST_P(SeededTest, HistogramConservesMass) {
  Rng rng(GetParam() ^ 0x33);
  FixedHistogram hist(rng.UniformDouble(1, 100), 1 + static_cast<int>(rng.UniformU64(64)));
  const int n = 1000 + static_cast<int>(rng.UniformU64(5000));
  for (int i = 0; i < n; ++i) {
    hist.Add(rng.UniformDouble(-100, 10000));
  }
  uint64_t total = 0;
  for (int b = 0; b < hist.bins(); ++b) {
    total += hist.count(b);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(n));
  EXPECT_EQ(hist.total(), static_cast<uint64_t>(n));
}

TEST_P(SeededTest, QuantileMonotoneInQ) {
  Rng rng(GetParam() ^ 0x44);
  FixedHistogram hist(10.0, 64);
  for (int i = 0; i < 3000; ++i) {
    hist.Add(rng.LogNormal(4.0, 1.0));
  }
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double v = hist.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_P(SeededTest, HllMergeCommutes) {
  Rng rng(GetParam() ^ 0x55);
  HyperLogLog a(10);
  HyperLogLog b(10);
  for (int i = 0; i < 2000; ++i) {
    (rng.Bernoulli(0.5) ? a : b).AddU64(rng.NextU64());
  }
  HyperLogLog ab = a;
  ab.Merge(b);
  HyperLogLog ba = b;
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.Estimate(), ba.Estimate());
}

TEST_P(SeededTest, HllInsertOrderIrrelevant) {
  Rng rng(GetParam() ^ 0x66);
  std::vector<uint64_t> values(1000);
  for (auto& v : values) {
    v = rng.NextU64();
  }
  HyperLogLog forward(8);
  for (uint64_t v : values) {
    forward.AddU64(v);
  }
  HyperLogLog reverse(8);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    reverse.AddU64(*it);
  }
  EXPECT_DOUBLE_EQ(forward.Estimate(), reverse.Estimate());
}

TEST_P(SeededTest, MomentsShiftInvarianceOfVariance) {
  Rng rng(GetParam() ^ 0x77);
  StreamingMoments base;
  StreamingMoments shifted;
  const double shift = 1e6;
  std::vector<double> xs(2000);
  for (auto& x : xs) {
    x = rng.UniformDouble(0, 100);
  }
  for (double x : xs) {
    base.Add(x);
    shifted.Add(x + shift);
  }
  EXPECT_NEAR(shifted.variance(), base.variance(), base.variance() * 1e-6);
  EXPECT_NEAR(shifted.skewness(), base.skewness(), 0.01);
}

TEST_P(SeededTest, CovarianceSymmetry) {
  Rng rng(GetParam() ^ 0x88);
  StreamingCovariance xy;
  StreamingCovariance yx;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(0, 10);
    const double y = rng.UniformDouble(0, 10) + x;
    xy.Add(x, y);
    yx.Add(y, x);
  }
  EXPECT_NEAR(xy.covariance(), yx.covariance(), 1e-9);
  EXPECT_NEAR(xy.correlation(), yx.correlation(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Batch (AddBatch) kernels: exactness contract of streaming/batch.h.
// Integer / fixed-point kernels are bit-identical to the scalar loop at any
// split; double-summing kernels carry a documented ULP bound because the
// 4-lane accumulation order differs from the sequential loop.

// Relative ULP-bound for the double Welford/moments chunk merges (Chan /
// Pébay): benign inputs at these sizes stay far inside 1e-12 relative.
constexpr double kBatchRelBound = 1e-12;

TEST_P(SeededTest, NicWelfordBatchSplitsAreBitExact) {
  Rng rng(GetParam() ^ 0xb1);
  std::vector<int64_t> xs(2000);
  for (auto& x : xs) {
    x = 64 + static_cast<int64_t>(rng.UniformU64(1450));
  }
  NicWelfordStats scalar;
  for (int64_t x : xs) {
    scalar.Add(x);
  }
  const size_t split = rng.UniformU64(xs.size() + 1);
  NicWelfordStats batch;
  batch.AddBatch(xs.data(), split);
  batch.AddBatch(xs.data() + split, xs.size() - split);
  EXPECT_EQ(batch.count(), scalar.count());
  EXPECT_EQ(batch.mean(), scalar.mean());
  EXPECT_EQ(batch.variance(), scalar.variance());
}

TEST_P(SeededTest, FixedPointDampedBatchIsBitExact) {
  Rng rng(GetParam() ^ 0xb2);
  std::vector<double> xs(1500), ts(1500);
  double t = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.UniformDouble(64, 1500);
    t += rng.UniformDouble(0.0001, 0.02);
    ts[i] = t;
  }
  DampedStats scalar(1.0, DampedMode::kNicFixedPoint);
  for (size_t i = 0; i < xs.size(); ++i) {
    scalar.Add(xs[i], ts[i]);
  }
  const size_t split = rng.UniformU64(xs.size() + 1);
  DampedStats batch(1.0, DampedMode::kNicFixedPoint);
  batch.AddBatch(xs.data(), ts.data(), split);
  batch.AddBatch(xs.data() + split, ts.data() + split, xs.size() - split);
  EXPECT_EQ(batch.weight(), scalar.weight());
  EXPECT_EQ(batch.mean(), scalar.mean());
  EXPECT_EQ(batch.variance(), scalar.variance());
}

TEST_P(SeededTest, HllBatchSplitsAreBitExact) {
  Rng rng(GetParam() ^ 0xb3);
  std::vector<uint64_t> vs(3000);
  for (auto& v : vs) {
    v = rng.NextU64();
  }
  HyperLogLog scalar(10);
  for (uint64_t v : vs) {
    scalar.AddU64(v);
  }
  const size_t split = rng.UniformU64(vs.size() + 1);
  HyperLogLog batch(10);
  batch.AddU64Batch(vs.data(), split);
  batch.AddU64Batch(vs.data() + split, vs.size() - split);
  EXPECT_EQ(batch.Estimate(), scalar.Estimate());
}

TEST_P(SeededTest, HistogramBatchSplitsAreBitExact) {
  Rng rng(GetParam() ^ 0xb4);
  std::vector<double> xs(2500);
  for (auto& x : xs) {
    x = rng.UniformDouble(-100, 10000);
  }
  FixedHistogram scalar(25.0, 32);
  for (double x : xs) {
    scalar.Add(x);
  }
  const size_t split = rng.UniformU64(xs.size() + 1);
  FixedHistogram batch(25.0, 32);
  batch.AddBatch(xs.data(), split);
  batch.AddBatch(xs.data() + split, xs.size() - split);
  EXPECT_EQ(batch.total(), scalar.total());
  for (int b = 0; b < scalar.bins(); ++b) {
    EXPECT_EQ(batch.count(b), scalar.count(b)) << "bin " << b;
  }
}

TEST_P(SeededTest, WelfordBatchSplitsWithinUlpBound) {
  Rng rng(GetParam() ^ 0xb5);
  std::vector<double> xs(4000);
  for (auto& x : xs) {
    x = rng.UniformDouble(40, 1500);
  }
  WelfordStats scalar;
  for (double x : xs) {
    scalar.Add(x);
  }
  const size_t split = rng.UniformU64(xs.size() + 1);
  WelfordStats batch;
  batch.AddBatch(xs.data(), split);
  batch.AddBatch(xs.data() + split, xs.size() - split);
  EXPECT_EQ(batch.count(), scalar.count());
  EXPECT_NEAR(batch.mean(), scalar.mean(), std::fabs(scalar.mean()) * kBatchRelBound);
  EXPECT_NEAR(batch.variance(), scalar.variance(), scalar.variance() * kBatchRelBound);

  // The Neumaier-compensated path obeys the same bound (it is tighter in
  // the sum itself; the Chan chunk merge dominates the residual).
  WelfordStats comp;
  comp.AddBatch(xs.data(), split, /*compensated=*/true);
  comp.AddBatch(xs.data() + split, xs.size() - split, /*compensated=*/true);
  EXPECT_NEAR(comp.mean(), scalar.mean(), std::fabs(scalar.mean()) * kBatchRelBound);
  EXPECT_NEAR(comp.variance(), scalar.variance(), scalar.variance() * kBatchRelBound);
}

TEST_P(SeededTest, MomentsBatchSplitsWithinUlpBound) {
  Rng rng(GetParam() ^ 0xb6);
  std::vector<double> xs(3000);
  for (auto& x : xs) {
    x = rng.LogNormal(4.0, 1.0);
  }
  StreamingMoments scalar;
  for (double x : xs) {
    scalar.Add(x);
  }
  const size_t split = rng.UniformU64(xs.size() + 1);
  StreamingMoments batch;
  batch.AddBatch(xs.data(), split);
  batch.AddBatch(xs.data() + split, xs.size() - split);
  EXPECT_NEAR(batch.mean(), scalar.mean(), std::fabs(scalar.mean()) * 1e-10);
  EXPECT_NEAR(batch.variance(), scalar.variance(), scalar.variance() * 1e-10);
  EXPECT_NEAR(batch.skewness(), scalar.skewness(), std::fabs(scalar.skewness()) * 1e-6 + 1e-9);
  EXPECT_NEAR(batch.kurtosis(), scalar.kurtosis(), std::fabs(scalar.kurtosis()) * 1e-6 + 1e-9);
}

TEST(BatchKernelTest, Log2BucketMatchesScalarAtBoundaries) {
  // The bit-trick bucketer must agree with the mathematical definition,
  // including exactly at power-of-two boundaries where std::log2 rounding
  // misbuckets.
  std::vector<double> vs = {0.0, -3.0, 0.5, 0.999999, 1.0, 1.5, 2.0,
                            3.0, 4.0, 1023.0, 1024.0, 1025.0,
                            2147483648.0, 1e300};
  std::vector<int32_t> batch(vs.size());
  batchkern::Log2BucketBatch(vs.data(), vs.size(), batch.data());
  for (size_t i = 0; i < vs.size(); ++i) {
    const double v = vs[i];
    int expected = 0;
    if (v >= 1.0) {
      expected = std::min(31, static_cast<int>(std::floor(std::log2(v))) + 1);
    }
    EXPECT_EQ(batchkern::Log2Bucket(v), expected) << "v=" << v;
    EXPECT_EQ(batch[i], expected) << "v=" << v;
  }
}

TEST_P(SeededTest, SimdFallbackIsBitIdentical) {
  // The 4-virtual-lane contract: the scalar fallback and the detected SIMD
  // level must produce bit-identical results for every primitive. On a
  // non-SIMD build/host both passes run scalar and the test is vacuous but
  // still true.
  Rng rng(GetParam() ^ 0xb7);
  std::vector<double> xs(1021);  // Odd size exercises the tail handling.
  std::vector<uint64_t> us(1021);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.UniformDouble(-10, 5000);
    us[i] = rng.NextU64();
  }
  struct Outputs {
    double sum, m2, m3, m4, lo, hi;
    std::vector<int32_t> buckets;
    std::vector<uint32_t> hashes;
  };
  const auto run = [&](SimdLevel level) {
    ForceSimdLevelForTest(level);
    Outputs o;
    o.sum = batchkern::Sum(xs.data(), xs.size());
    batchkern::CentralPowers(xs.data(), xs.size(), 700.0, /*compensated=*/false,
                             &o.m2, &o.m3, &o.m4);
    o.lo = xs[0];
    o.hi = xs[0];
    batchkern::MinMax(xs.data(), xs.size(), &o.lo, &o.hi);
    o.buckets.resize(xs.size());
    batchkern::Log2BucketBatch(xs.data(), xs.size(), o.buckets.data());
    o.hashes.resize(us.size());
    batchkern::HashU64Batch(us.data(), us.size(), o.hashes.data());
    return o;
  };
  const SimdLevel detected = ActiveSimdLevel();
  const Outputs simd = run(detected);
  const Outputs scalar = run(SimdLevel::kScalar);
  ForceSimdLevelForTest(detected);  // Restore for other tests.
  EXPECT_EQ(simd.sum, scalar.sum);
  EXPECT_EQ(simd.m2, scalar.m2);
  EXPECT_EQ(simd.m3, scalar.m3);
  EXPECT_EQ(simd.m4, scalar.m4);
  EXPECT_EQ(simd.lo, scalar.lo);
  EXPECT_EQ(simd.hi, scalar.hi);
  EXPECT_EQ(simd.buckets, scalar.buckets);
  EXPECT_EQ(simd.hashes, scalar.hashes);
}

TEST(DampedModeTest, ExactDoubleLsSsEqualsWelfordForm) {
  // The two internal representations are mathematically identical; in
  // double precision they must agree tightly on benign value ranges.
  DampedStats ls_ss(0.5, DampedMode::kExactDouble);
  DampedStats welford(0.5, DampedMode::kNicFixedPoint);  // Welford form (+quantization).
  Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.UniformDouble(100, 1000);
    t += 0.003;
    ls_ss.Add(x, t);
    welford.Add(x, t);
  }
  EXPECT_LT(RelativeError(welford.mean(), ls_ss.mean()), 0.01);
  EXPECT_LT(RelativeError(welford.variance(), ls_ss.variance()), 0.03);
}

TEST(DampedModeTest, Float32CancellationOnLargeOffsets) {
  // The AfterImage LS/SS representation in float32 loses the variance of a
  // small-spread stream riding on a large mean; the Welford form does not.
  DampedStats exact(0.1, DampedMode::kExactDouble);
  DampedStats f32(0.1, DampedMode::kFloat32);
  DampedStats nic(0.1, DampedMode::kNicFixedPoint);
  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = 3.0e6 + rng.UniformDouble(-20, 20);  // Inter-arrival ns scale.
    t += 0.001;
    exact.Add(x, t);
    f32.Add(x, t);
    nic.Add(x, t);
  }
  const double err_f32 = RelativeError(f32.variance(), exact.variance());
  const double err_nic = RelativeError(nic.variance(), exact.variance());
  EXPECT_GT(err_f32, 0.5);   // Catastrophic cancellation.
  EXPECT_LT(err_nic, 0.05);  // Welford form survives.
}

}  // namespace
}  // namespace superfe
