#include <gtest/gtest.h>

#include "nicsim/group_table.h"

namespace superfe {
namespace {

GroupKey Key(uint32_t ip) {
  PacketRecord pkt;
  pkt.tuple.src_ip = ip;
  return GroupKey::ForPacket(pkt, Granularity::kHost);
}

struct TestState {
  int value = 0;
};

TEST(GroupTableTest, CreateThenFind) {
  GroupTable<TestState> table(16, 4);
  bool via_dram = false;
  TestState& state = table.FindOrCreate(Key(1), Key(1).Hash(), [] { return TestState{42}; },
                                        via_dram);
  EXPECT_EQ(state.value, 42);
  EXPECT_FALSE(via_dram);

  TestState* found = table.Find(Key(1), Key(1).Hash());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 42);
  EXPECT_EQ(found, &state);
}

TEST(GroupTableTest, FindMissingIsNull) {
  GroupTable<TestState> table(16, 4);
  EXPECT_EQ(table.Find(Key(9), Key(9).Hash()), nullptr);
}

TEST(GroupTableTest, SecondCreateReturnsSameState) {
  GroupTable<TestState> table(16, 4);
  bool via_dram = false;
  TestState& a = table.FindOrCreate(Key(5), Key(5).Hash(), [] { return TestState{1}; },
                                    via_dram);
  a.value = 77;
  TestState& b = table.FindOrCreate(Key(5), Key(5).Hash(), [] { return TestState{1}; },
                                    via_dram);
  EXPECT_EQ(b.value, 77);
  EXPECT_EQ(table.size(), 1u);
}

TEST(GroupTableTest, ChainOverflowGoesToDram) {
  // One bucket, width 2: the third distinct key overflows.
  GroupTable<TestState> table(1, 2);
  bool via_dram = false;
  table.FindOrCreate(Key(1), 0, [] { return TestState{}; }, via_dram);
  EXPECT_FALSE(via_dram);
  table.FindOrCreate(Key(2), 0, [] { return TestState{}; }, via_dram);
  EXPECT_FALSE(via_dram);
  table.FindOrCreate(Key(3), 0, [] { return TestState{}; }, via_dram);
  EXPECT_TRUE(via_dram);
  EXPECT_EQ(table.stats().dram_entries, 1u);
  EXPECT_EQ(table.size(), 3u);
  // DRAM entries are still findable.
  EXPECT_NE(table.Find(Key(3), 0), nullptr);
}

TEST(GroupTableTest, DramRateTracksOverflowLookups) {
  GroupTable<TestState> table(1, 1);
  bool via_dram = false;
  table.FindOrCreate(Key(1), 0, [] { return TestState{}; }, via_dram);
  for (int i = 0; i < 9; ++i) {
    table.FindOrCreate(Key(2), 0, [] { return TestState{}; }, via_dram);
    EXPECT_TRUE(via_dram);
  }
  EXPECT_NEAR(table.stats().DramRate(), 0.9, 1e-9);
}

TEST(GroupTableTest, ForEachVisitsEverything) {
  GroupTable<TestState> table(4, 1);
  bool via_dram = false;
  for (uint32_t i = 0; i < 20; ++i) {
    table.FindOrCreate(Key(i), Key(i).Hash(), [&] { return TestState{static_cast<int>(i)}; },
                       via_dram);
  }
  int visited = 0;
  int sum = 0;
  table.ForEach([&](const GroupKey& key, TestState& state) {
    (void)key;
    ++visited;
    sum += state.value;
  });
  EXPECT_EQ(visited, 20);
  EXPECT_EQ(sum, 190);  // 0 + 1 + ... + 19.
}

TEST(GroupTableTest, ClearEmptiesEverything) {
  GroupTable<TestState> table(2, 1);
  bool via_dram = false;
  for (uint32_t i = 0; i < 10; ++i) {
    table.FindOrCreate(Key(i), Key(i).Hash(), [] { return TestState{}; }, via_dram);
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().dram_entries, 0u);
  EXPECT_EQ(table.Find(Key(3), Key(3).Hash()), nullptr);
}

}  // namespace
}  // namespace superfe
