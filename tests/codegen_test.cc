#include <gtest/gtest.h>

#include "apps/policies.h"
#include "nicsim/microc_gen.h"
#include "nicsim/placement.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"
#include "switchsim/p4gen.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("gen", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

PlacementResult PlacementFor(const CompiledPolicy& compiled) {
  PlacementProblem problem;
  problem.states = compiled.nic_program.states;
  problem.key_bytes = compiled.switch_program.FgKeyBytes();
  return std::move(SolvePlacement(problem)).value();
}

TEST(P4GenTest, ContainsParserAndFilter) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)");
  const std::string p4 = GenerateP4(compiled, FeSwitch::DefaultConfig(compiled));
  EXPECT_NE(p4.find("parser FeParser"), std::string::npos);
  EXPECT_NE(p4.find("table policy_filter"), std::string::npos);
  EXPECT_NE(p4.find("hdr.ipv4.protocol"), std::string::npos);  // tcp.exist predicate.
  EXPECT_NE(p4.find("#include <tna.p4>"), std::string::npos);
}

TEST(P4GenTest, RegistersMatchCacheGeometry) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)");
  MgpvConfig config = FeSwitch::DefaultConfig(compiled);
  config.short_buffers = 1234;
  config.long_buffers = 77;
  config.long_size = 9;
  const std::string p4 = GenerateP4(compiled, config);
  EXPECT_NE(p4.find("bit<32>>(1234)"), std::string::npos);   // Short entries.
  EXPECT_NE(p4.find("bit<32>>(693)"), std::string::npos);    // 77 * 9 long cells.
  EXPECT_NE(p4.find("long_free_stack"), std::string::npos);
}

TEST(P4GenTest, MultiGranularityEmitsFgTable) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host, socket)
  .reduce(size, [f_mean])
  .collect(pkt)
)");
  const std::string p4 = GenerateP4(compiled, FeSwitch::DefaultConfig(compiled));
  EXPECT_NE(p4.find("fg_key_word_0"), std::string::npos);
  EXPECT_NE(p4.find("CG = host"), std::string::npos);
  EXPECT_NE(p4.find("FG = socket"), std::string::npos);
  // Host CG hashes the canonical (min) address: the in-dataplane fallback
  // for the simulator's initiator key, never the raw source address.
  EXPECT_NE(p4.find("cg_hash.get({min(hdr.ipv4.src_addr, hdr.ipv4.dst_addr)})"),
            std::string::npos);
  EXPECT_EQ(p4.find("cg_hash.get({hdr.ipv4.src_addr})"), std::string::npos);
}

// Golden CG-hash emission for all three CG granularity classes: host and
// channel share the min/max canonicalization helper (both directions hash
// alike), socket/flow hash the raw five-tuple.
TEST(P4GenTest, CgHashGoldenPerGranularity) {
  const auto p4_for = [](const char* source) {
    const CompiledPolicy compiled = CompileSource(source);
    return GenerateP4(compiled, FeSwitch::DefaultConfig(compiled));
  };

  const std::string host = p4_for(R"(
pktstream
  .groupby(host)
  .reduce(size, [f_mean])
  .collect(host)
)");
  EXPECT_NE(host.find("CG = host"), std::string::npos);
  EXPECT_NE(host.find("cg_hash.get({min(hdr.ipv4.src_addr, hdr.ipv4.dst_addr)})"),
            std::string::npos);
  EXPECT_NE(host.find("min/max fallback"), std::string::npos);  // Delta documented.

  const std::string channel = p4_for(R"(
pktstream
  .groupby(channel)
  .reduce(size, [f_mean])
  .collect(channel)
)");
  EXPECT_NE(channel.find("CG = channel"), std::string::npos);
  EXPECT_NE(
      channel.find("cg_hash.get({min(hdr.ipv4.src_addr, hdr.ipv4.dst_addr),\n"
                   "                                     max(hdr.ipv4.src_addr, "
                   "hdr.ipv4.dst_addr)});"),
      std::string::npos);
  EXPECT_NE(channel.find("min/max fallback"), std::string::npos);

  const std::string flow = p4_for(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)");
  EXPECT_NE(flow.find("CG = flow"), std::string::npos);
  EXPECT_NE(flow.find("cg_hash.get({hdr.ipv4.src_addr, hdr.ipv4.dst_addr,"),
            std::string::npos);
  // The five-tuple hash needs no canonicalization fallback.
  EXPECT_EQ(flow.find("min/max fallback"), std::string::npos);
}

TEST(P4GenTest, SingleGranularityHasNoFgTable) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)");
  const std::string p4 = GenerateP4(compiled, FeSwitch::DefaultConfig(compiled));
  EXPECT_EQ(p4.find("fg_key_word"), std::string::npos);
}

TEST(P4GenTest, MetadataFieldsGetRegisters) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean])
  .reduce(ipt, [f_mean])
  .collect(flow)
)");
  const std::string p4 = GenerateP4(compiled, FeSwitch::DefaultConfig(compiled));
  EXPECT_NE(p4.find("short_size_0"), std::string::npos);
  EXPECT_NE(p4.find("short_tstamp_0"), std::string::npos);
  EXPECT_NE(p4.find("short_size_3"), std::string::npos);  // 4 slots: 0..3.
}

TEST(MicroCGenTest, EmitsUpdateRoutinesAndTables) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean, f_var])
  .reduce(ipt, [ft_hist{1024, 16}])
  .collect(flow)
)");
  const std::string microc = GenerateMicroC(compiled, PlacementFor(compiled));
  EXPECT_NE(microc.find("update_flow_size_f_mean"), std::string::npos);
  EXPECT_NE(microc.find("update_flow_ipt_ft_hist"), std::string::npos);
  EXPECT_NE(microc.find("drain_residue"), std::string::npos);  // Division elimination.
  EXPECT_NE(microc.find("table_flow"), std::string::npos);
  EXPECT_NE(microc.find("mgpv_receive"), std::string::npos);
  // Histogram indexing is a shift, not a divide.
  EXPECT_NE(microc.find("WIDTH_SHIFT_"), std::string::npos);
  EXPECT_EQ(microc.find(" / "), std::string::npos);
}

TEST(MicroCGenTest, DampedStatsUseFixedPointWelford) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host)
  .reduce(size, [f_mean{decay=5}])
  .collect(host)
)");
  const std::string microc = GenerateMicroC(compiled, PlacementFor(compiled));
  EXPECT_NE(microc.find("exp2_lut"), std::string::npos);
  EXPECT_NE(microc.find("m2_fp"), std::string::npos);
  EXPECT_NE(microc.find("shift_div"), std::string::npos);
}

TEST(MicroCGenTest, PerPacketCollectEmitsVector) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host, socket)
  .reduce(size, [f_mean], host)
  .reduce(size, [f_mag], socket)
  .collect(pkt)
)");
  const std::string microc = GenerateMicroC(compiled, PlacementFor(compiled));
  EXPECT_NE(microc.find("emit_feature_vector"), std::string::npos);
  EXPECT_NE(microc.find("table_host"), std::string::npos);
  EXPECT_NE(microc.find("table_socket"), std::string::npos);
  EXPECT_NE(microc.find("twod_update_a"), std::string::npos);  // Bidirectional stats.
}

TEST(MicroCGenTest, CardUsesSwitchHash) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host)
  .reduce(size, [f_card])
  .collect(host)
)");
  const std::string microc = GenerateMicroC(compiled, PlacementFor(compiled));
  EXPECT_NE(microc.find("mgpv_hash"), std::string::npos);  // Hash-reuse optimization.
  EXPECT_NE(microc.find("hll"), std::string::npos);
}

TEST(CodegenTest, AllAppPoliciesGenerate) {
  for (const auto& app : AllAppPolicies()) {
    auto compiled = Compile(app.policy);
    ASSERT_TRUE(compiled.ok()) << app.name;
    const std::string p4 = GenerateP4(*compiled, FeSwitch::DefaultConfig(*compiled));
    const std::string microc = GenerateMicroC(*compiled, PlacementFor(*compiled));
    EXPECT_GT(p4.size(), 2000u) << app.name;
    EXPECT_GT(microc.size(), 1000u) << app.name;
    EXPECT_NE(p4.find(app.name), std::string::npos) << app.name;
    EXPECT_NE(microc.find(app.name), std::string::npos) << app.name;
  }
}

}  // namespace
}  // namespace superfe
