#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/autoencoder.h"
#include "ml/decision_tree.h"
#include "ml/kitnet.h"
#include "ml/random_forest.h"
#include "ml/knn.h"
#include "ml/metrics.h"

namespace superfe {
namespace {

TEST(MetricsTest, ConfusionCounts) {
  const std::vector<int> truth = {1, 1, 0, 0, 1};
  const std::vector<int> pred = {1, 0, 0, 1, 1};
  const BinaryMetrics m = EvaluateBinary(truth, pred);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_NEAR(m.Accuracy(), 0.6, 1e-9);
  EXPECT_NEAR(m.Precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.Recall(), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, PerfectAuc) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_NEAR(RocAuc(truth, scores), 1.0, 1e-9);
}

TEST(MetricsTest, RandomAucIsHalf) {
  Rng rng(1);
  std::vector<int> truth(10000);
  std::vector<double> scores(10000);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.Bernoulli(0.3) ? 1 : 0;
    scores[i] = rng.UniformDouble();
  }
  EXPECT_NEAR(RocAuc(truth, scores), 0.5, 0.02);
}

TEST(MetricsTest, AucHandlesTies) {
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_NEAR(RocAuc(truth, scores), 0.5, 1e-9);
}

TEST(MetricsTest, InvertedScoresGiveZero) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_NEAR(RocAuc(truth, scores), 0.0, 1e-9);
}

TEST(AutoencoderTest, LearnsToReconstruct) {
  Autoencoder ae(4, 3, 0.2, 1);
  Rng rng(2);
  // Low-dimensional structure: x = (a, a, b, b).
  auto sample = [&]() {
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    return std::vector<double>{a, a, b, b};
  };
  double early = 0.0;
  for (int i = 0; i < 200; ++i) {
    early += ae.Train(sample());
  }
  for (int i = 0; i < 5000; ++i) {
    ae.Train(sample());
  }
  double late = 0.0;
  for (int i = 0; i < 200; ++i) {
    late += ae.Score(sample());
  }
  EXPECT_LT(late, early);
}

TEST(AutoencoderTest, AnomalyScoresHigherThanNormal) {
  Autoencoder ae(4, 2, 0.2, 3);
  Rng rng(4);
  auto normal = [&]() {
    const double a = rng.UniformDouble();
    return std::vector<double>{a, a, 1.0 - a, 1.0 - a};
  };
  for (int i = 0; i < 8000; ++i) {
    ae.Train(normal());
  }
  double normal_score = 0.0;
  double anomaly_score = 0.0;
  for (int i = 0; i < 100; ++i) {
    normal_score += ae.Score(normal());
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    anomaly_score += ae.Score({a, b, a, b});  // Breaks the structure.
  }
  EXPECT_GT(anomaly_score, normal_score * 1.3);
}

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformDouble(0, 10);
    samples.push_back({x, rng.UniformDouble()});
    labels.push_back(x > 5.0 ? 1 : 0);
  }
  DecisionTree tree;
  tree.Fit(samples, labels);
  EXPECT_EQ(tree.Predict({7.0, 0.5}), 1);
  EXPECT_EQ(tree.Predict({2.0, 0.5}), 0);
}

TEST(DecisionTreeTest, LearnsXor) {
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    const double y = rng.UniformDouble();
    samples.push_back({x, y});
    labels.push_back((x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  DecisionTree tree(DecisionTreeConfig{6, 2});
  tree.Fit(samples, labels);
  const auto preds = tree.PredictBatch(samples);
  EXPECT_GT(MulticlassAccuracy(labels, preds), 0.95);
}

TEST(DecisionTreeTest, RespectsDepthLimit) {
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.UniformDouble()});
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);  // Pure noise.
  }
  DecisionTree tree(DecisionTreeConfig{3, 2});
  tree.Fit(samples, labels);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTreeTest, EmptyFitPredictsZero) {
  DecisionTree tree;
  tree.Fit({}, {});
  EXPECT_EQ(tree.Predict({1.0}), 0);
}

TEST(KnnTest, MajorityVote) {
  KnnClassifier knn(3);
  knn.Fit({{0.0}, {0.1}, {0.2}, {10.0}, {10.1}}, {0, 0, 0, 1, 1});
  EXPECT_EQ(knn.Predict({0.05}), 0);
  EXPECT_EQ(knn.Predict({10.05}), 1);
}

TEST(KnnTest, SeparatedClusters) {
  Rng rng(8);
  std::vector<std::vector<double>> train;
  std::vector<int> labels;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 50; ++i) {
      train.push_back({c * 10.0 + rng.Normal(0, 1), c * 10.0 + rng.Normal(0, 1)});
      labels.push_back(c);
    }
  }
  KnnClassifier knn(5);
  knn.Fit(train, labels);
  int correct = 0;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 20; ++i) {
      const std::vector<double> q = {c * 10.0 + rng.Normal(0, 1), c * 10.0 + rng.Normal(0, 1)};
      if (knn.Predict(q) == c) {
        ++correct;
      }
    }
  }
  EXPECT_GT(correct, 72);  // > 90%.
}

TEST(KitNetTest, BuildsClustersAfterFmPhase) {
  KitNetConfig config;
  config.feature_map_samples = 200;
  config.max_cluster_size = 3;
  KitNet net(9, config);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    // Three correlated triples.
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    const double c = rng.UniformDouble();
    net.Train({a, a * 2, a * 3, b, b + 1, b * 2, c, c * c, c + 2});
  }
  ASSERT_TRUE(net.mapped());
  EXPECT_GE(net.num_clusters(), 3);
  for (const auto& cluster : net.clusters()) {
    EXPECT_LE(cluster.size(), 3u);
  }
}

TEST(KitNetTest, DetectsDistributionShift) {
  KitNetConfig config;
  config.feature_map_samples = 300;
  config.learning_rate = 0.2;
  KitNet net(6, config);
  Rng rng(10);
  auto normal = [&]() {
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    return std::vector<double>{a, a, a, b, b, b};
  };
  for (int i = 0; i < 6000; ++i) {
    net.Train(normal());
  }
  double normal_score = 0.0;
  double anomaly_score = 0.0;
  for (int i = 0; i < 200; ++i) {
    normal_score += net.Score(normal());
    std::vector<double> odd(6);
    for (auto& v : odd) {
      v = rng.UniformDouble();  // Uncorrelated: breaks learned structure.
    }
    anomaly_score += net.Score(odd);
  }
  EXPECT_GT(anomaly_score, normal_score * 1.2);
}

TEST(RandomForestTest, BeatsNoiseOnSeparableData) {
  Rng rng(11);
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  for (int i = 0; i < 600; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<double> x(6);
    for (auto& v : x) {
      v = rng.Normal(label * 2.0, 1.0);
    }
    samples.push_back(std::move(x));
    labels.push_back(label);
  }
  RandomForest forest;
  forest.Fit(samples, labels);
  const auto preds = forest.PredictBatch(samples);
  EXPECT_GT(MulticlassAccuracy(labels, preds), 0.9);
}

TEST(RandomForestTest, ScoreIsVoteFraction) {
  RandomForestConfig config;
  config.trees = 10;
  RandomForest forest(config);
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    samples.push_back({label * 10.0 + rng.Normal(0, 0.1)});
    labels.push_back(label);
  }
  forest.Fit(samples, labels);
  EXPECT_EQ(forest.tree_count(), 10);
  EXPECT_GT(forest.Score({10.0}), 0.8);
  EXPECT_LT(forest.Score({0.0}), 0.2);
}

TEST(RandomForestTest, EmptyFitPredictsZero) {
  RandomForest forest;
  forest.Fit({}, {});
  EXPECT_EQ(forest.Predict({1.0, 2.0}), 0);
  EXPECT_EQ(forest.Score({1.0}), 0.0);
}

TEST(RandomForestTest, MoreTreesNoWorse) {
  // XOR-ish data where single trees with tight depth struggle.
  Rng rng(13);
  std::vector<std::vector<double>> samples;
  std::vector<int> labels;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.UniformDouble();
    const double y = rng.UniformDouble();
    samples.push_back({x, y, rng.UniformDouble()});
    labels.push_back((x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  RandomForestConfig small;
  small.trees = 1;
  small.feature_fraction = 1.0;
  RandomForestConfig big = small;
  big.trees = 25;
  RandomForest f1(small);
  RandomForest f25(big);
  f1.Fit(samples, labels);
  f25.Fit(samples, labels);
  const double a1 = MulticlassAccuracy(labels, f1.PredictBatch(samples));
  const double a25 = MulticlassAccuracy(labels, f25.PredictBatch(samples));
  EXPECT_GE(a25, a1 - 0.02);
}

}  // namespace
}  // namespace superfe
