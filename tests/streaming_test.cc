#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "common/stats.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/naive.h"
#include "streaming/reservoir.h"
#include "streaming/welford.h"

namespace superfe {
namespace {

std::vector<double> RandomSamples(size_t n, uint64_t seed, double lo = 0.0, double hi = 1500.0) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.UniformDouble(lo, hi);
  }
  return xs;
}

TEST(WelfordTest, MatchesExactDefinitions) {
  const auto xs = RandomSamples(10000, 1);
  WelfordStats w;
  for (double x : xs) {
    w.Add(x);
  }
  EXPECT_NEAR(w.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(w.variance(), Variance(xs), 1e-6);
  EXPECT_EQ(w.count(), xs.size());
}

TEST(WelfordTest, SingleSample) {
  WelfordStats w;
  w.Add(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(WelfordTest, EmptyIsZero) {
  WelfordStats w;
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(NicWelfordTest, SmallRelativeErrorOnPacketSizes) {
  // Stationary packet-size-like stream: the comparison trick should stay
  // within a few percent of the exact statistics (the Fig 10 claim).
  Rng rng(2);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rng.Bernoulli(0.8) ? 1514.0 : 64.0;
  }
  NicWelfordStats nic;
  for (double x : xs) {
    nic.Add(static_cast<int64_t>(x));
  }
  EXPECT_LT(RelativeError(nic.mean(), Mean(xs)), 0.04);
  EXPECT_LT(RelativeError(nic.variance(), Variance(xs)), 0.08);
}

TEST(NicWelfordTest, StopsIssuingDivisionsAfterWarmup) {
  NicWelfordStats nic;
  for (int i = 0; i < 1000; ++i) {
    nic.Add(100 + (i % 7));
  }
  // Two divisions per sample during the 64-sample warm-up only.
  EXPECT_LE(nic.divisions_issued(), 2 * 64u);
}

TEST(NicWelfordTest, TracksShiftingMean) {
  NicWelfordStats nic;
  WelfordStats exact;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = (i < 10000 ? 200.0 : 1200.0) + rng.UniformDouble(-50, 50);
    nic.Add(static_cast<int64_t>(x));
    exact.Add(x);
  }
  EXPECT_LT(RelativeError(nic.mean(), exact.mean()), 0.05);
}

TEST(DampedTest, NoDecayMatchesPlainStats) {
  // lambda -> 0 means effectively no decay over a short window.
  DampedStats damped(0.0);
  const auto xs = RandomSamples(1000, 4);
  double t = 0.0;
  for (double x : xs) {
    damped.Add(x, t);
    t += 0.001;
  }
  EXPECT_NEAR(damped.mean(), Mean(xs), 1e-6);
  EXPECT_NEAR(damped.variance(), Variance(xs), 1.0);
  EXPECT_NEAR(damped.weight(), 1000.0, 1e-6);
}

TEST(DampedTest, HalvesWeightPerHalfLife) {
  DampedStats damped(1.0);  // 2^(-dt): half-life of 1 s.
  damped.Add(10.0, 0.0);
  damped.DecayTo(1.0);
  EXPECT_NEAR(damped.weight(), 0.5, 1e-9);
  damped.DecayTo(2.0);
  EXPECT_NEAR(damped.weight(), 0.25, 1e-9);
}

TEST(DampedTest, MeanIsDecayInvariantForConstantStream) {
  DampedStats damped(5.0);
  for (int i = 0; i < 100; ++i) {
    damped.Add(42.0, i * 0.05);
  }
  EXPECT_NEAR(damped.mean(), 42.0, 1e-9);
  EXPECT_NEAR(damped.variance(), 0.0, 1e-6);
}

TEST(DampedTest, RecentSamplesDominate) {
  DampedStats damped(5.0);
  for (int i = 0; i < 50; ++i) {
    damped.Add(100.0, i * 0.001);
  }
  for (int i = 0; i < 50; ++i) {
    damped.Add(500.0, 10.0 + i * 0.001);  // 10 s later: old window decayed away.
  }
  EXPECT_NEAR(damped.mean(), 500.0, 1.0);
}

TEST(DampedTest, FixedPointCloseToExact) {
  DampedStats exact(1.0, DampedMode::kExactDouble);
  DampedStats fixed(1.0, DampedMode::kNicFixedPoint);
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = 64.0 + rng.UniformDouble(0, 1400);
    exact.Add(x, t);
    fixed.Add(x, t);
    t += rng.UniformDouble(0.0001, 0.01);
  }
  EXPECT_LT(RelativeError(fixed.mean(), exact.mean()), 0.04);
  EXPECT_LT(RelativeError(fixed.stddev(), exact.stddev()), 0.06);
}

TEST(DampedTest, Float32WorseThanFixedPointOnVariance) {
  // The original Kitsune's float32 |SS/w - mean^2| cancels catastrophically
  // for large values with small spread; SuperFE's fixed point does not see
  // the same blow-up because its quantization error is additive.
  DampedStats exact(0.1, DampedMode::kExactDouble);
  DampedStats fixed(0.1, DampedMode::kNicFixedPoint);
  DampedStats f32(0.1, DampedMode::kFloat32);
  Rng rng(6);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = 100000.0 + rng.UniformDouble(-5, 5);  // Large mean, tiny spread.
    exact.Add(x, t);
    fixed.Add(x, t);
    f32.Add(x, t);
    t += 0.001;
  }
  const double err_fixed = RelativeError(fixed.variance(), exact.variance());
  const double err_f32 = RelativeError(f32.variance(), exact.variance());
  EXPECT_GT(err_f32, err_fixed);
}

TEST(Damped2DTest, MagnitudeOfSymmetricStreams) {
  DampedStats2D s(0.0);
  for (int i = 0; i < 100; ++i) {
    s.AddA(3.0, i * 0.001);
    s.AddB(4.0, i * 0.001);
  }
  EXPECT_NEAR(s.Magnitude(), 5.0, 1e-6);  // sqrt(9 + 16).
}

TEST(Damped2DTest, CorrelationBounded) {
  DampedStats2D s(1.0);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.5)) {
      s.AddA(rng.UniformDouble(0, 100), i * 0.001);
    } else {
      s.AddB(rng.UniformDouble(0, 100), i * 0.001);
    }
  }
  EXPECT_GE(s.CorrelationCoefficient(), -1.0);
  EXPECT_LE(s.CorrelationCoefficient(), 1.0);
}

TEST(Damped2DTest, RadiusZeroForConstantStreams) {
  DampedStats2D s(0.0);
  for (int i = 0; i < 50; ++i) {
    s.AddA(10.0, i * 0.001);
    s.AddB(20.0, i * 0.001);
  }
  EXPECT_NEAR(s.Radius(), 0.0, 1e-6);
}

class HllAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracyTest, EstimateWithinExpectedError) {
  const uint64_t true_cardinality = GetParam();
  HyperLogLog hll(10);  // 1024 buckets -> ~3.25% standard error.
  Rng rng(8);
  for (uint64_t i = 0; i < true_cardinality; ++i) {
    hll.AddU64(i * 2654435761ull + 17);
  }
  const double estimate = hll.Estimate();
  EXPECT_NEAR(estimate, static_cast<double>(true_cardinality),
              std::max(5.0, 0.12 * static_cast<double>(true_cardinality)));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(10, 100, 1000, 10000, 100000));

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(8);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t v = 0; v < 50; ++v) {
      hll.AddU64(v);
    }
  }
  EXPECT_NEAR(hll.Estimate(), 50.0, 10.0);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(10);
  HyperLogLog b(10);
  for (uint64_t v = 0; v < 3000; ++v) {
    a.AddU64(v);
  }
  for (uint64_t v = 2000; v < 5000; ++v) {
    b.AddU64(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 5000.0, 400.0);
}

TEST(HllTest, SmallMemoryFootprint) {
  HyperLogLog hll(6);
  EXPECT_EQ(hll.StateBytes(), 64u);  // The §6.1 per-group budget.
}

TEST(FixedHistogramTest, BucketsAndClamping) {
  FixedHistogram hist(10.0, 4);
  hist.Add(5.0);    // Bucket 0.
  hist.Add(15.0);   // Bucket 1.
  hist.Add(999.0);  // Clamped into bucket 3.
  hist.Add(-2.0);   // Clamped into bucket 0.
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(3), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(FixedHistogramTest, PdfSumsToOne) {
  FixedHistogram hist(100.0, 16);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    hist.Add(rng.UniformDouble(0, 1600));
  }
  double sum = 0.0;
  for (double p : hist.Pdf()) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FixedHistogramTest, CdfMonotoneEndsAtOne) {
  FixedHistogram hist(50.0, 8);
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    hist.Add(rng.UniformDouble(0, 400));
  }
  const auto cdf = hist.Cdf();
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

TEST(FixedHistogramTest, QuantileApproximatesUniform) {
  FixedHistogram hist(10.0, 100);
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    hist.Add(rng.UniformDouble(0, 1000));
  }
  EXPECT_NEAR(hist.Quantile(0.5), 500.0, 20.0);
  EXPECT_NEAR(hist.Quantile(0.9), 900.0, 20.0);
}

TEST(FixedHistogramTest, PercentileOf) {
  FixedHistogram hist(1.0, 10);
  for (int i = 0; i < 10; ++i) {
    hist.Add(i + 0.5);
  }
  EXPECT_NEAR(hist.PercentileOf(5.0), 0.5, 1e-9);
}

TEST(VariableHistogramTest, CalibratedBucketsEqualProbability) {
  Rng rng(12);
  std::vector<double> calibration(20000);
  for (auto& v : calibration) {
    v = rng.LogNormal(3.0, 1.5);  // Skewed data.
  }
  auto hist = VariableHistogram::FromCalibration(calibration, 10);
  Rng rng2(13);
  for (int i = 0; i < 50000; ++i) {
    hist.Add(rng2.LogNormal(3.0, 1.5));
  }
  // Every bucket should hold roughly 10% of the mass.
  for (double p : hist.Pdf()) {
    EXPECT_NEAR(p, 0.1, 0.035);
  }
}

TEST(VariableHistogramTest, QuantileOnSkewedData) {
  Rng rng(14);
  std::vector<double> calibration(20000);
  for (auto& v : calibration) {
    v = rng.LogNormal(3.0, 1.0);
  }
  auto hist = VariableHistogram::FromCalibration(calibration, 64);
  std::vector<double> data(50000);
  Rng rng2(15);
  for (auto& v : data) {
    v = rng2.LogNormal(3.0, 1.0);
    hist.Add(v);
  }
  const double est = hist.Quantile(0.5);
  const double exact = Quantile(data, 0.5);
  EXPECT_LT(RelativeError(est, exact), 0.1);
}

TEST(MomentsTest, MatchExactSkewKurtosis) {
  Rng rng(16);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rng.Exponential(0.5);  // Skewed distribution.
  }
  StreamingMoments m;
  for (double x : xs) {
    m.Add(x);
  }
  EXPECT_NEAR(m.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(m.variance(), Variance(xs), 1e-6);
  EXPECT_NEAR(m.skewness(), Skewness(xs), 1e-6);
  EXPECT_NEAR(m.kurtosis(), Kurtosis(xs), 1e-6);
}

TEST(MomentsTest, NormalHasKurtosisThree) {
  Rng rng(17);
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) {
    m.Add(rng.Normal());
  }
  EXPECT_NEAR(m.kurtosis(), 3.0, 0.1);
  EXPECT_NEAR(m.skewness(), 0.0, 0.05);
}

TEST(CovarianceTest, MatchesExact) {
  Rng rng(18);
  std::vector<double> xs(10000);
  std::vector<double> ys(10000);
  StreamingCovariance cov;
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.UniformDouble(0, 10);
    ys[i] = 2.0 * xs[i] + rng.Normal(0.0, 1.0);
    cov.Add(xs[i], ys[i]);
  }
  EXPECT_NEAR(cov.covariance(), Covariance(xs, ys), 1e-6);
  EXPECT_NEAR(cov.correlation(), PearsonCorrelation(xs, ys), 1e-9);
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  ReservoirSample<int> sample(10, 1);
  for (int i = 0; i < 5; ++i) {
    sample.Add(i);
  }
  EXPECT_EQ(sample.sample().size(), 5u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 1000 items should appear with ~10/1000 probability; check the
  // aggregate count of "early" items is unbiased.
  int early_total = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    ReservoirSample<int> sample(10, seed);
    for (int i = 0; i < 1000; ++i) {
      sample.Add(i);
    }
    for (int v : sample.sample()) {
      if (v < 500) {
        ++early_total;
      }
    }
  }
  // Expected: 300 runs * 10 slots * 0.5 = 1500.
  EXPECT_NEAR(early_total, 1500, 150);
}

TEST(NaiveTest, MatchesStreamingResults) {
  const auto xs = RandomSamples(5000, 19);
  NaiveStats naive;
  WelfordStats stream;
  for (double x : xs) {
    naive.Add(x);
    stream.Add(x);
  }
  EXPECT_NEAR(naive.Mean(), stream.mean(), 1e-9);
  EXPECT_NEAR(naive.Variance(), stream.variance(), 1e-6);
  EXPECT_EQ(naive.MemoryBytes(), 5000u * 8u);
}

TEST(NaiveTest, MemoryGrowsLinearlyUnlikeStreaming) {
  NaiveStats naive;
  for (int i = 0; i < 100000; ++i) {
    naive.Add(i);
  }
  EXPECT_EQ(naive.MemoryBytes(), 800000u);
  // The streaming counterpart is O(1): 12 bytes on the NIC.
  EXPECT_EQ(WelfordStats::kNicStateBytes, 12u);
}

TEST(NaiveTest, DistinctCount) {
  NaiveStats naive;
  for (int rep = 0; rep < 3; ++rep) {
    for (int v = 0; v < 7; ++v) {
      naive.Add(v);
    }
  }
  EXPECT_EQ(naive.DistinctCount(), 7u);
}

}  // namespace
}  // namespace superfe
