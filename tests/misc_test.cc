// Coverage for small shared utilities and naming/diagnostic helpers.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "nicsim/cost_model.h"
#include "policy/functions.h"
#include "policy/value.h"
#include "switchsim/group_key.h"
#include "switchsim/mgpv.h"

namespace superfe {
namespace {

TEST(ValueTest, ScalarBasics) {
  Value v(3.5);
  EXPECT_TRUE(v.is_scalar());
  EXPECT_FALSE(v.is_array());
  EXPECT_DOUBLE_EQ(v.AsScalar(), 3.5);
  EXPECT_EQ(v.Flatten(), std::vector<double>{3.5});
  EXPECT_EQ(v.ToString(), "3.5");
}

TEST(ValueTest, IntPromotesToScalar) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_scalar());
  EXPECT_DOUBLE_EQ(v.AsScalar(), 42.0);
}

TEST(ValueTest, ArrayBasics) {
  Value v(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.AsArray().size(), 3u);
  EXPECT_EQ(v.AsScalar(), 0.0);  // Scalar view of an array is zero.
  EXPECT_EQ(v.ToString(), "[1, 2, 3]");
}

TEST(ValueTest, LongArrayTruncatesInToString) {
  std::vector<double> xs(32, 1.0);
  Value v(xs);
  const std::string s = v.ToString();
  EXPECT_NE(s.find("(32 total)"), std::string::npos);
}

TEST(ValueTest, DefaultIsZeroScalar) {
  Value v;
  EXPECT_TRUE(v.is_scalar());
  EXPECT_EQ(v.AsScalar(), 0.0);
}

TEST(LoggingTest, LevelGateRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Statements below the gate must not be emitted (smoke: must not crash).
  SFE_DLOG() << "hidden debug";
  SFE_ILOG() << "hidden info";
  SetLogLevel(before);
}

TEST(NamesTest, EvictReasonNames) {
  EXPECT_STREQ(EvictReasonName(EvictReason::kCollision), "collision");
  EXPECT_STREQ(EvictReasonName(EvictReason::kShortFull), "short_full");
  EXPECT_STREQ(EvictReasonName(EvictReason::kLongFull), "long_full");
  EXPECT_STREQ(EvictReasonName(EvictReason::kAging), "aging");
  EXPECT_STREQ(EvictReasonName(EvictReason::kFlush), "flush");
}

TEST(NamesTest, MemLevelNames) {
  EXPECT_STREQ(MemLevelName(MemLevel::kCls), "CLS");
  EXPECT_STREQ(MemLevelName(MemLevel::kEmem), "EMEM");
}

TEST(NamesTest, GranularityNamesAndOrder) {
  EXPECT_STREQ(GranularityName(Granularity::kHost), "host");
  EXPECT_STREQ(GranularityName(Granularity::kFlow), "flow");
  EXPECT_TRUE(IsCoarserOrEqual(Granularity::kHost, Granularity::kSocket));
  EXPECT_TRUE(IsCoarserOrEqual(Granularity::kChannel, Granularity::kChannel));
  EXPECT_FALSE(IsCoarserOrEqual(Granularity::kSocket, Granularity::kHost));
  // socket and flow are equally fine.
  EXPECT_TRUE(IsCoarserOrEqual(Granularity::kSocket, Granularity::kFlow));
  EXPECT_TRUE(IsCoarserOrEqual(Granularity::kFlow, Granularity::kSocket));
}

TEST(GroupKeyTest, ToStringIsHex) {
  PacketRecord pkt;
  pkt.tuple.src_ip = MakeIp(1, 2, 3, 4);
  const GroupKey key = GroupKey::ForPacket(pkt, Granularity::kHost);
  EXPECT_EQ(key.ToString(), "host:01020304");
}

TEST(GroupKeyTest, FromFgTupleDerivesEveryGranularity) {
  const FiveTuple fg{MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  // Host = the initiator's IP (the FG tuple's source side).
  const GroupKey host = GroupKey::FromFgTuple(fg, Granularity::kHost);
  EXPECT_EQ(host.length, 4);
  EXPECT_EQ(host.ToString(), "host:0a000001");
  // Channel = the ordered (initiator, responder) pair — not min/max.
  const GroupKey channel = GroupKey::FromFgTuple(fg, Granularity::kChannel);
  EXPECT_EQ(channel.length, 8);
  EXPECT_EQ(channel.ToString(), "channel:0a0000010a000002");
  // Socket/flow carry the full tuple.
  EXPECT_EQ(GroupKey::FromFgTuple(fg, Granularity::kSocket).length, 13);
}

TEST(GroupKeyTest, BothDirectionsOfAFlowShareEveryKey) {
  // The sharding invariant: forward and reverse packets of one flow map to
  // identical keys (and hashes, hence shards) at every granularity.
  PacketRecord fwd;
  fwd.tuple = {MakeIp(10, 0, 0, 1), MakeIp(192, 168, 0, 9), 1234, 443, kProtoTcp};
  fwd.direction = Direction::kForward;
  PacketRecord bwd;
  bwd.tuple = fwd.tuple.Reversed();
  bwd.direction = Direction::kBackward;
  for (Granularity g : {Granularity::kHost, Granularity::kChannel, Granularity::kSocket,
                        Granularity::kFlow}) {
    const GroupKey f = GroupKey::ForPacket(fwd, g);
    const GroupKey b = GroupKey::ForPacket(bwd, g);
    EXPECT_EQ(f, b) << GranularityName(g);
    EXPECT_EQ(f.Hash(), b.Hash()) << GranularityName(g);
  }
  // A flow initiated from the other end is a *different* host and channel
  // group (ordered pair), even though the canonical IP set is the same.
  PacketRecord other = bwd;
  other.direction = Direction::kForward;
  EXPECT_NE(GroupKey::ForPacket(fwd, Granularity::kHost),
            GroupKey::ForPacket(other, Granularity::kHost));
  EXPECT_NE(GroupKey::ForPacket(fwd, Granularity::kChannel),
            GroupKey::ForPacket(other, Granularity::kChannel));
}

TEST(GroupKeyTest, HashDependsOnGranularity) {
  PacketRecord pkt;
  pkt.tuple = {MakeIp(9, 9, 9, 9), MakeIp(8, 8, 8, 8), 1, 2, kProtoUdp};
  const GroupKey socket = GroupKey::ForPacket(pkt, Granularity::kSocket);
  const GroupKey flow = GroupKey::ForPacket(pkt, Granularity::kFlow);
  // Same bytes, different granularity seed: distinct hashes.
  EXPECT_NE(socket.Hash(), flow.Hash());
}

TEST(GroupKeyTest, InitiatorTupleUndoesDirection) {
  PacketRecord fwd;
  fwd.tuple = {1, 2, 3, 4, kProtoTcp};
  fwd.direction = Direction::kForward;
  PacketRecord bwd;
  bwd.tuple = fwd.tuple.Reversed();
  bwd.direction = Direction::kBackward;
  EXPECT_EQ(GroupKey::InitiatorTuple(fwd), GroupKey::InitiatorTuple(bwd));
}

TEST(FunctionsTest, OutputWidths) {
  ReduceSpec hist{ReduceFn::kHist};
  hist.param1 = 32;
  EXPECT_EQ(OutputWidth(hist), 32u);
  ReduceSpec arr{ReduceFn::kArray};
  arr.array_limit = 777;
  EXPECT_EQ(OutputWidth(arr), 777u);
  ReduceSpec arr_default{ReduceFn::kArray};
  EXPECT_EQ(OutputWidth(arr_default), 5000u);
  EXPECT_EQ(OutputWidth(ReduceSpec{ReduceFn::kMean}), 1u);
}

TEST(FunctionsTest, DecayAddsStateAndOps) {
  ReduceSpec plain{ReduceFn::kMean};
  ReduceSpec damped{ReduceFn::kMean};
  damped.decay_lambda = 1.0;
  const ReduceCost plain_cost = CostOfReduce(plain);
  const ReduceCost damped_cost = CostOfReduce(damped);
  EXPECT_GT(damped_cost.state_bytes, plain_cost.state_bytes);
  EXPECT_GT(damped_cost.alu_ops, plain_cost.alu_ops);
}

TEST(FunctionsTest, HistogramStateScalesWithBins) {
  ReduceSpec small{ReduceFn::kHist};
  small.param0 = 10;
  small.param1 = 8;
  ReduceSpec big = small;
  big.param1 = 64;
  EXPECT_EQ(CostOfReduce(big).state_bytes, 8 * CostOfReduce(small).state_bytes);
}

TEST(FunctionsTest, MapCosts) {
  EXPECT_EQ(CostOfMap(MapFn::kOne).state_bytes, 0u);
  EXPECT_GT(CostOfMap(MapFn::kIpt).state_bytes, 0u);
  EXPECT_GT(CostOfMap(MapFn::kSpeed).divisions, 0u);
  EXPECT_EQ(CostOfMap(MapFn::kDirection).divisions, 0u);
}

TEST(CostModelTest, DivisionEliminationChangesCost) {
  NfpArch arch;
  CellWork work;
  work.alu_ops = 10;
  work.divisions = 2;
  work.mem_accesses = 1;
  work.mem_latency_cycles = 100;
  work.hashes = 1;

  NicPerfModel with(arch, NicOptimizations::All());
  with.AccountCell(work);
  NicPerfModel without(arch, NicOptimizations::None());
  without.AccountCell(work);
  EXPECT_GT(without.EffectiveCycles(), with.EffectiveCycles() + 2000);
}

TEST(CostModelTest, ThreadingHidesMemoryLatency) {
  NfpArch arch;
  CellWork work;
  work.alu_ops = 5;
  work.mem_accesses = 4;
  work.mem_latency_cycles = 4000;  // Memory-bound cell.
  work.hashes = 0;

  NicOptimizations threaded = NicOptimizations::None();
  threaded.multithreading = true;
  NicPerfModel with(arch, threaded);
  with.AccountCell(work);
  NicPerfModel without(arch, NicOptimizations::None());
  without.AccountCell(work);
  EXPECT_LT(with.EffectiveCycles(), without.EffectiveCycles());
}

TEST(CostModelTest, ThroughputZeroWithoutWork) {
  NfpArch arch;
  NicPerfModel model(arch, NicOptimizations::All());
  EXPECT_EQ(model.ThroughputPps(60), 0.0);
}

TEST(MgpvConfigTest, FootprintComponents) {
  MgpvConfig config;
  config.short_buffers = 100;
  config.short_size = 4;
  config.long_buffers = 10;
  config.long_size = 20;
  config.metadata_bytes_per_cell = 7;
  config.cg = Granularity::kHost;
  const uint64_t single = config.MemoryFootprintBytes();
  config.metadata_bytes_per_cell = 14;
  EXPECT_GT(config.MemoryFootprintBytes(), single);
}

}  // namespace
}  // namespace superfe
