// Tests for the sharded FE-Switch + parallel replay driver: serial-vs-sharded
// feature-multiset equivalence, per-group order preservation under the
// CG-hash partition, queue fast-path/fallback behavior under saturation,
// exact ReplayReport aggregation across shard threads, and metrics-totals
// merging. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "net/replay.h"
#include "net/trace_gen.h"
#include "nicsim/mpsc_queue.h"
#include "policy/parser.h"
#include "switchsim/group_key.h"

namespace superfe {
namespace {

// CG == FG == flow: every granularity's state is fully nested inside the
// CG-hash partition, so sharding preserves each group's update sequence and
// the per-packet feature stream is bit-identical to the serial reference.
const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

Result<Policy> ParseFlowPolicy() { return ParsePolicy("sharded", kFlowStatsPolicy); }

// Host CG over a multi-granularity chain with 2D sibling features at
// channel: the case that diverged under sharding before host/channel keys
// were initiator-oriented (both directions of one flow now share every key,
// so the chain nests inside the CG partition).
const char* kHostCgPolicy = R"(
pktstream
  .groupby(host, channel, socket)
  .map(one, _, f_one)
  .reduce(one, [f_sum], host)
  .reduce(size, [f_mean, f_mag, f_pcc], channel)
  .reduce(size, [f_sum, f_min, f_max], socket)
  .collect(pkt)
)";

// Channel CG: the ordered (initiator, responder) pair partitions the trace.
const char* kChannelCgPolicy = R"(
pktstream
  .groupby(channel, flow)
  .reduce(size, [f_mag, f_pcc], channel)
  .reduce(size, [f_sum, f_mean], flow)
  .collect(flow)
)";

// Order-independent comparison key: (group key bytes, timestamp, values).
using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<FeatureVector> RunPipeline(const Policy& policy, const Trace& trace,
                                       uint32_t shards, uint32_t workers,
                                       RunReport* report_out = nullptr) {
  RuntimeConfig config;
  config.switch_shards = shards;
  config.worker_threads = workers;
  auto runtime = SuperFeRuntime::Create(policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  CollectingFeatureSink sink;
  RunReport report = (*runtime)->Run(trace, &sink);
  if (report_out != nullptr) {
    *report_out = report;
  }
  return sink.vectors();
}

TEST(ShardedReplayTest, FeatureMultisetMatchesSerialReference) {
  auto policy = ParseFlowPolicy();
  ASSERT_TRUE(policy.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 12000, /*seed=*/7);

  RunReport serial_report;
  const auto oracle = SortedMultiset(RunPipeline(*policy, trace, 1, 0, &serial_report));
  ASSERT_FALSE(oracle.empty());

  for (uint32_t shards : {1u, 2u, 4u}) {
    for (uint32_t workers : {0u, 1u, 4u}) {
      RunReport report;
      const auto got = SortedMultiset(RunPipeline(*policy, trace, shards, workers, &report));
      EXPECT_EQ(oracle, got) << "shards=" << shards << " workers=" << workers;
      // Offered-load accounting must aggregate exactly across shard threads.
      EXPECT_EQ(serial_report.offered.packets, report.offered.packets);
      EXPECT_EQ(serial_report.offered.bytes, report.offered.bytes);
      EXPECT_EQ(serial_report.offered.span_min_ns, report.offered.span_min_ns);
      EXPECT_EQ(serial_report.offered.span_max_ns, report.offered.span_max_ns);
      EXPECT_DOUBLE_EQ(serial_report.offered.offered_gbps, report.offered.offered_gbps);
      // Switch/MGPV totals are integer sums over shards of the same stream.
      EXPECT_EQ(serial_report.switch_stats.packets_seen, report.switch_stats.packets_seen);
      EXPECT_EQ(serial_report.switch_stats.packets_batched,
                report.switch_stats.packets_batched);
      EXPECT_EQ(serial_report.mgpv.packets_in, report.mgpv.packets_in);
      EXPECT_EQ(serial_report.mgpv.cells_out, report.mgpv.cells_out);
      EXPECT_EQ(serial_report.nic.cells, report.nic.cells);
      EXPECT_EQ(serial_report.nic.vectors_emitted, report.nic.vectors_emitted);
    }
  }
}

// CSV lines exactly as tools/superfe_run's CsvSink writes them (default
// ostream double formatting), sorted — the byte-level comparison the CI
// export-smoke diff performs.
std::vector<std::string> SortedCsvLines(const std::vector<FeatureVector>& vectors) {
  std::vector<std::string> lines;
  lines.reserve(vectors.size());
  for (const auto& v : vectors) {
    std::ostringstream line;
    line << v.group.ToString() << "," << v.timestamp_ns;
    for (double value : v.values) {
      line << "," << value;
    }
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

// The acceptance-criteria matrix: a bidirectional trace replayed through
// every shard/worker shape must match the serial oracle byte-for-byte
// (after sort) for host-, channel-, and flow-CG policies. No granularity
// exemptions: initiator-oriented keys make the whole chain nest inside the
// CG partition.
TEST(ShardedReplayTest, BidirectionalTraceExactForEveryCgGranularity) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 6000, /*seed=*/13);
  // The profile generates request/response traffic on the same sockets;
  // make sure both directions are actually present.
  uint64_t backward = 0;
  for (const auto& pkt : trace.packets()) {
    backward += pkt.direction == Direction::kBackward ? 1 : 0;
  }
  ASSERT_GT(backward, 0u);
  ASSERT_LT(backward, trace.size());

  const struct {
    const char* name;
    const char* source;
  } policies[] = {{"host-cg", kHostCgPolicy},
                  {"channel-cg", kChannelCgPolicy},
                  {"flow-cg", kFlowStatsPolicy}};
  for (const auto& p : policies) {
    auto policy = ParsePolicy(p.name, p.source);
    ASSERT_TRUE(policy.ok()) << p.name << ": " << policy.status().ToString();

    const auto oracle_vectors = RunPipeline(*policy, trace, 1, 0);
    ASSERT_FALSE(oracle_vectors.empty()) << p.name;
    const auto oracle_multiset = SortedMultiset(oracle_vectors);
    const auto oracle_csv = SortedCsvLines(oracle_vectors);

    for (uint32_t shards : {1u, 2u, 4u}) {
      for (uint32_t workers : {0u, 1u, 4u}) {
        const auto got = RunPipeline(*policy, trace, shards, workers);
        EXPECT_EQ(oracle_multiset, SortedMultiset(got))
            << p.name << " shards=" << shards << " workers=" << workers;
        EXPECT_EQ(oracle_csv, SortedCsvLines(got))
            << p.name << " shards=" << shards << " workers=" << workers;
      }
    }
  }
}

// Key symmetry at the routing layer: the forward and backward packets of a
// flow select the same shard for every shard count and every granularity.
TEST(ShardedReplayTest, BothDirectionsSelectTheSameShard) {
  PacketRecord fwd;
  fwd.tuple = {MakeIp(172, 16, 4, 9), MakeIp(10, 9, 8, 7), 50123, 443, kProtoTcp};
  fwd.direction = Direction::kForward;
  PacketRecord bwd;
  bwd.tuple = fwd.tuple.Reversed();
  bwd.direction = Direction::kBackward;

  for (Granularity g : {Granularity::kHost, Granularity::kChannel, Granularity::kSocket,
                        Granularity::kFlow}) {
    const uint32_t fwd_hash = GroupKey::ForPacket(fwd, g).Hash();
    const uint32_t bwd_hash = GroupKey::ForPacket(bwd, g).Hash();
    EXPECT_EQ(fwd_hash, bwd_hash) << GranularityName(g);
    for (uint32_t shards : {2u, 3u, 4u, 7u}) {
      EXPECT_EQ(fwd_hash % shards, bwd_hash % shards)
          << GranularityName(g) << " shards=" << shards;
    }
  }
}

// Failover routing keys on the CG hash, so after a member crash both
// directions of a flow make identical routing decisions — the group fails
// over as a unit instead of splitting across survivors.
TEST(ShardedReplayTest, FailoverRoutesBothDirectionsTogether) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kMemberCrash;
  crash.target = 1;
  crash.at_ns = 1'000'000;
  crash.detect_ns = 0;  // Detected immediately: reroutes, no in-flight loss.
  plan.Add(crash);
  FaultInjector injector(plan);
  const uint32_t kMembers = 4;
  injector.BeginRun(kMembers);

  PacketRecord fwd;
  fwd.direction = Direction::kForward;
  PacketRecord bwd;
  bwd.direction = Direction::kBackward;
  int rerouted = 0;
  for (uint32_t host = 0; host < 64; ++host) {
    fwd.tuple = {MakeIp(10, 0, 0, 1) + host, MakeIp(192, 168, 1, 1) + host, 1000, 80,
                 kProtoTcp};
    bwd.tuple = fwd.tuple.Reversed();
    for (Granularity g : {Granularity::kHost, Granularity::kChannel}) {
      const uint32_t fwd_hash = GroupKey::ForPacket(fwd, g).Hash();
      const uint32_t bwd_hash = GroupKey::ForPacket(bwd, g).Hash();
      ASSERT_EQ(fwd_hash, bwd_hash) << GranularityName(g);
      const auto f =
          injector.RouteFor(fwd_hash % kMembers, fwd_hash, /*evict_ns=*/2'000'000, kMembers);
      const auto b =
          injector.RouteFor(bwd_hash % kMembers, bwd_hash, /*evict_ns=*/2'000'000, kMembers);
      EXPECT_EQ(static_cast<int>(f.action), static_cast<int>(b.action));
      EXPECT_EQ(f.target, b.target);
      if (f.action == FaultInjector::RouteDecision::Action::kReroute) {
        ++rerouted;
        EXPECT_NE(f.target, 1u);  // Never to the dead member.
      }
    }
  }
  EXPECT_GT(rerouted, 0);  // The crashed member's hash range actually moved.
}

TEST(ShardedReplayTest, AmplifiedReplayStaysEquivalent) {
  auto policy = ParseFlowPolicy();
  ASSERT_TRUE(policy.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 4000, /*seed=*/11);

  const auto run = [&](uint32_t shards, uint32_t workers) {
    RuntimeConfig config;
    config.switch_shards = shards;
    config.worker_threads = workers;
    config.replay.amplification = 3;
    auto runtime = SuperFeRuntime::Create(*policy, config);
    EXPECT_TRUE(runtime.ok());
    CollectingFeatureSink sink;
    (*runtime)->Run(trace, &sink);
    return SortedMultiset(sink.vectors());
  };
  const auto oracle = run(1, 0);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(oracle, run(4, 0));
  EXPECT_EQ(oracle, run(2, 2));
}

// ---------------------------------------------------------------------------
// ParallelReplay: partition and ordering.

class RecordingSink : public PacketSink {
 public:
  void OnPacket(const PacketRecord& packet) override { packets_.push_back(packet); }
  const std::vector<PacketRecord>& packets() const { return packets_; }

 private:
  std::vector<PacketRecord> packets_;
};

std::string CgKeyOf(const PacketRecord& pkt) {
  const GroupKey key = GroupKey::ForPacket(pkt, Granularity::kFlow);
  return std::string(key.bytes.begin(), key.bytes.begin() + key.length);
}

TEST(ShardedReplayTest, PerGroupOrderPreservedUnderSharding) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 6000, /*seed=*/3);
  ReplayOptions options;
  options.amplification = 2;

  RecordingSink serial;
  const ReplayReport serial_report = Replay(trace, options, serial);

  const uint32_t kShards = 4;
  std::vector<RecordingSink> shard_sinks(kShards);
  std::vector<PacketSink*> sinks;
  for (auto& s : shard_sinks) {
    sinks.push_back(&s);
  }
  const auto shard_of = [](const PacketRecord& pkt) {
    return GroupKey::ForPacket(pkt, Granularity::kFlow).Hash() % 4;
  };
  const ReplayReport sharded_report =
      ParallelReplay(trace, options, sinks, /*shard_obs=*/{}, shard_of);

  EXPECT_EQ(serial_report.packets, sharded_report.packets);
  EXPECT_EQ(serial_report.bytes, sharded_report.bytes);
  EXPECT_EQ(serial_report.span_min_ns, sharded_report.span_min_ns);
  EXPECT_EQ(serial_report.span_max_ns, sharded_report.span_max_ns);

  // Serial per-group subsequences (timestamps identify packets: replicas and
  // packets are interleaved deterministically by the replayer).
  std::map<std::string, std::vector<uint64_t>> serial_by_group;
  for (const auto& pkt : serial.packets()) {
    serial_by_group[CgKeyOf(pkt)].push_back(pkt.timestamp_ns);
  }
  std::map<std::string, std::vector<uint64_t>> sharded_by_group;
  std::map<std::string, uint32_t> owner;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (const auto& pkt : shard_sinks[s].packets()) {
      const std::string key = CgKeyOf(pkt);
      const auto [it, inserted] = owner.emplace(key, s);
      // A group never spans shards.
      EXPECT_EQ(it->second, s) << "group split across shards";
      sharded_by_group[key].push_back(pkt.timestamp_ns);
    }
  }
  EXPECT_EQ(serial_by_group, sharded_by_group);
}

TEST(ShardedReplayTest, ReplayReportMergeIsExact) {
  ReplayReport total;
  ReplayReport a;
  a.packets = 3;
  a.bytes = 300;
  a.span_min_ns = 50;
  a.span_max_ns = 2'000'000'050;
  ReplayReport b;
  b.packets = 5;
  b.bytes = 700;
  b.span_min_ns = 10;
  b.span_max_ns = 1'000'000'000;
  total.MergeFrom(a);
  total.MergeFrom(b);
  total.FinalizeRates();
  EXPECT_EQ(total.packets, 8u);
  EXPECT_EQ(total.bytes, 1000u);
  EXPECT_EQ(total.span_min_ns, 10u);
  EXPECT_EQ(total.span_max_ns, 2'000'000'050u);
  EXPECT_DOUBLE_EQ(total.duration_s, 2.00000004);
  EXPECT_GT(total.offered_mpps, 0.0);

  ReplayReport empty;
  empty.FinalizeRates();
  EXPECT_EQ(empty.duration_s, 0.0);
  EXPECT_EQ(empty.offered_gbps, 0.0);
}

// ---------------------------------------------------------------------------
// BoundedMpscQueue: lock-free fast path, saturation fallback, control barrier.

TEST(BoundedMpscQueueTest, SpscFastPathDeliversInOrder) {
  BoundedMpscQueue<int> queue(64);
  constexpr int kItems = 10000;
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_EQ(queue.Pop(), i);  // SPSC ring is FIFO.
    }
  });
  for (int i = 0; i < kItems; ++i) {
    queue.PushBlocking(int(i));
  }
  consumer.join();
  EXPECT_EQ(queue.fast_pushes() + queue.blocked_pushes(), static_cast<uint64_t>(kItems));
}

TEST(BoundedMpscQueueTest, SaturationFallbackIsLossless) {
  BoundedMpscQueue<int> queue(4);  // Tiny ring: forces the mutex fallback.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.PushBlocking(p * kPerProducer + i);
      }
    });
  }
  std::vector<int> received;
  received.reserve(kProducers * kPerProducer);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    received.push_back(queue.Pop());
  }
  for (auto& t : producers) {
    t.join();
  }
  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(received[i], i);  // Every value exactly once: lossless.
  }
  EXPECT_EQ(queue.fast_pushes() + queue.blocked_pushes(),
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_GE(queue.high_watermark(), queue.capacity());
}

TEST(BoundedMpscQueueTest, TryPushRespectsCapacityBound) {
  BoundedMpscQueue<int> queue(4);
  ASSERT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPush(int(i)));
  }
  EXPECT_FALSE(queue.TryPush(99));  // Ring full, no consumer.
  EXPECT_EQ(queue.Pop(), 0);
  EXPECT_TRUE(queue.TryPush(4));  // Freed slot is reusable.
  EXPECT_EQ(queue.size(), 4u);
}

TEST(BoundedMpscQueueTest, ControlBypassesBoundAndOrdersAfterOwnData) {
  BoundedMpscQueue<int> queue(8);
  // Fill the ring, then push control messages: they must not block and must
  // be delivered only after all data pushed before them.
  for (int i = 0; i < 8; ++i) {
    queue.PushBlocking(int(i));
  }
  queue.PushUnbounded(1000);
  queue.PushUnbounded(1001);
  EXPECT_EQ(queue.size(), 10u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(queue.Pop(), i);
  }
  EXPECT_EQ(queue.Pop(), 1000);
  EXPECT_EQ(queue.Pop(), 1001);
  // A control pushed with an empty ring is deliverable immediately, and
  // data pushed *after* it comes later.
  queue.PushUnbounded(2000);
  queue.PushBlocking(42);
  EXPECT_EQ(queue.Pop(), 2000);
  EXPECT_EQ(queue.Pop(), 42);
}

TEST(BoundedMpscQueueTest, ControlBarrierHoldsUnderConcurrency) {
  // One producer streams data then a control sentinel, while the consumer
  // runs concurrently: the sentinel must arrive after every data item the
  // producer pushed before it, across many rounds.
  BoundedMpscQueue<int> queue(8);
  constexpr int kRounds = 200;
  constexpr int kPerRound = 37;
  std::thread producer([&] {
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kPerRound; ++i) {
        queue.PushBlocking(r * kPerRound + i);
      }
      queue.PushUnbounded(-(r + 1));  // Control sentinel for round r.
    }
  });
  int max_data_seen = -1;
  int controls_seen = 0;
  for (int n = 0; n < kRounds * (kPerRound + 1); ++n) {
    const int v = queue.Pop();
    if (v < 0) {
      const int round = -v - 1;
      EXPECT_EQ(round, controls_seen);  // Controls in order.
      // Every data item of this round precedes its control sentinel.
      EXPECT_GE(max_data_seen, (round + 1) * kPerRound - 1);
      ++controls_seen;
    } else {
      max_data_seen = std::max(max_data_seen, v);
    }
  }
  producer.join();
  EXPECT_EQ(controls_seen, kRounds);
}

// ---------------------------------------------------------------------------
// Observability merging.

TEST(ShardedReplayTest, ShardedMetricsTotalsMatchUnsharded) {
  auto policy = ParseFlowPolicy();
  ASSERT_TRUE(policy.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 8000, /*seed=*/5);

  const auto run = [&](uint32_t shards, uint32_t workers, RunReport* report,
                       std::unique_ptr<SuperFeRuntime>* runtime_out) {
    RuntimeConfig config;
    config.switch_shards = shards;
    config.worker_threads = workers;
    config.obs.metrics = true;
    config.obs.latency = true;
    auto runtime = SuperFeRuntime::Create(*policy, config);
    ASSERT_TRUE(runtime.ok());
    CollectingFeatureSink sink;
    *report = (*runtime)->Run(trace, &sink);
    *runtime_out = std::move(runtime).value();
  };

  RunReport serial_report;
  std::unique_ptr<SuperFeRuntime> serial_rt;
  run(1, 0, &serial_report, &serial_rt);
  RunReport sharded_report;
  std::unique_ptr<SuperFeRuntime> sharded_rt;
  run(4, 2, &sharded_report, &sharded_rt);

  const obs::MetricsRegistry& serial_reg = *serial_rt->metrics();
  const obs::MetricsRegistry& sharded_reg = *sharded_rt->metrics();

  // Shared counters (one family, all shard threads increment the same
  // handles): totals equal the unsharded run's exactly.
  for (const char* name :
       {"superfe_mgpv_packets_in_total", "superfe_mgpv_cells_out_total",
        "superfe_replay_packets_total", "superfe_replay_bytes_total"}) {
    const auto serial_v = serial_reg.Value(name);
    const auto sharded_v = sharded_reg.Value(name);
    ASSERT_TRUE(serial_v.has_value()) << name;
    ASSERT_TRUE(sharded_v.has_value()) << name;
    EXPECT_EQ(*serial_v, *sharded_v) << name;
  }

  // Per-shard labeled switch counters sum to the unsharded (unlabeled) total.
  const auto serial_seen = serial_reg.Value("superfe_switch_packets_seen_total");
  ASSERT_TRUE(serial_seen.has_value());
  double sharded_seen = 0.0;
  for (int s = 0; s < 4; ++s) {
    const auto v = sharded_reg.Value("superfe_switch_packets_seen_total",
                                     {{"shard", std::to_string(s)}});
    ASSERT_TRUE(v.has_value()) << "shard " << s;
    sharded_seen += *v;
  }
  EXPECT_EQ(*serial_seen, sharded_seen);

  // Latency lanes merge consistently: residency is observed once per MGPV
  // eviction and end-to-end once per report, across all shard lanes. (Batch
  // *boundaries* may legally differ from the serial run — each shard runs
  // its own aging scan and long-buffer pool — so only conservation laws are
  // compared across runs, not per-batch populations.)
  uint64_t sharded_evictions = 0;
  for (int i = 0; i < 5; ++i) {
    sharded_evictions += sharded_report.mgpv.evictions[i];
  }
  EXPECT_EQ(sharded_report.latency.mgpv_residency.count, sharded_evictions);
  EXPECT_EQ(sharded_report.latency.end_to_end.count, sharded_report.nic.reports);
  EXPECT_TRUE(sharded_report.latency.enabled);

  // Cluster cost reporting is populated for the cluster run only.
  EXPECT_FALSE(serial_report.cluster_cost.enabled);
  ASSERT_TRUE(sharded_report.cluster_cost.enabled);
  EXPECT_EQ(sharded_report.cluster_cost.members, 2u);
  EXPECT_EQ(sharded_report.cluster_cost.per_member.size(), 2u);
  uint64_t member_cells = 0;
  double share_sum = 0.0;
  for (const auto& m : sharded_report.cluster_cost.per_member) {
    member_cells += m.cells;
    share_sum += m.cells_share;
  }
  EXPECT_EQ(member_cells, sharded_report.nic.cells);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_GE(sharded_report.cluster_cost.load_imbalance, 1.0);
}

}  // namespace
}  // namespace superfe
