#include <gtest/gtest.h>

#include "policy/builder.h"
#include "policy/parser.h"

namespace superfe {
namespace {

TEST(ParserTest, ParsesFig3StyleBasicStats) {
  auto policy = ParsePolicy("basic", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean, f_var, f_min, f_max])
  .collect(flow)
  .reduce(ipt, [f_mean, f_var, f_min, f_max])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ(policy->name, "basic");
  EXPECT_EQ(policy->ops.size(), 9u);
}

TEST(ParserTest, ParsesFig4Histograms) {
  auto policy = ParsePolicy("freq", R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(ipt, [ft_hist{10000, 100}])
  .reduce(size, [ft_hist{100, 16}])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const auto* reduce = std::get_if<ReduceOp>(&policy->ops[2]);
  ASSERT_NE(reduce, nullptr);
  ASSERT_EQ(reduce->specs.size(), 1u);
  EXPECT_EQ(reduce->specs[0].fn, ReduceFn::kHist);
  EXPECT_DOUBLE_EQ(reduce->specs[0].param0, 10000.0);
  EXPECT_DOUBLE_EQ(reduce->specs[0].param1, 100.0);
}

TEST(ParserTest, ParsesFig5DirectionSequences) {
  auto policy = ParsePolicy("wfp", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(direction, one, f_direction)
  .reduce(direction, [f_array])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
}

TEST(ParserTest, NamedParameters) {
  auto policy = ParsePolicy("named", R"(
pktstream
  .groupby(host)
  .reduce(size, [f_mean{decay=0.5}, f_array{limit=128}])
  .collect(host)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const auto* reduce = std::get_if<ReduceOp>(&policy->ops[1]);
  ASSERT_NE(reduce, nullptr);
  EXPECT_DOUBLE_EQ(reduce->specs[0].decay_lambda, 0.5);
  EXPECT_EQ(reduce->specs[1].array_limit, 128u);
}

TEST(ParserTest, GranularityRestrictedReduce) {
  auto policy = ParsePolicy("restricted", R"(
pktstream
  .groupby(host, channel)
  .reduce(size, [f_mean], host)
  .reduce(size, [f_var], channel)
  .collect(pkt)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const auto* r0 = std::get_if<ReduceOp>(&policy->ops[1]);
  ASSERT_NE(r0, nullptr);
  ASSERT_TRUE(r0->at.has_value());
  EXPECT_EQ(*r0->at, Granularity::kHost);
}

TEST(ParserTest, ComparisonPredicates) {
  auto policy = ParsePolicy("pred", R"(
pktstream
  .filter(dst_port == 443 && size > 100)
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const auto* filter = std::get_if<FilterOp>(&policy->ops[0]);
  ASSERT_NE(filter, nullptr);
  ASSERT_EQ(filter->expr.conjuncts.size(), 2u);
  EXPECT_EQ(filter->expr.conjuncts[0].field, PredField::kDstPort);
  EXPECT_EQ(filter->expr.conjuncts[1].op, PredOp::kGt);
}

TEST(ParserTest, CommentsAndBlankLines) {
  auto policy = ParsePolicy("comments", R"(
# A comment line.
pktstream
  .groupby(flow)   # trailing comment
  .reduce(size, [f_sum])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
}

TEST(ParserTest, SynthesizeWithQualifiedSource) {
  auto policy = ParsePolicy("synth", R"(
pktstream
  .groupby(flow)
  .map(dirsize, size, f_direction)
  .reduce(dirsize, [f_array{100}])
  .synthesize(f_norm(dirsize.f_array))
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
}

struct BadPolicyCase {
  const char* name;
  const char* source;
};

class ParserErrorTest : public ::testing::TestWithParam<BadPolicyCase> {};

TEST_P(ParserErrorTest, Rejects) {
  auto policy = ParsePolicy(GetParam().name, GetParam().source);
  EXPECT_FALSE(policy.ok()) << "expected failure for " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    BadPolicies, ParserErrorTest,
    ::testing::Values(
        BadPolicyCase{"no_pktstream", ".groupby(flow).collect(flow)"},
        BadPolicyCase{"unknown_op", "pktstream.frobnicate(flow)"},
        BadPolicyCase{"unknown_granularity", "pktstream.groupby(flowz).collect(flowz)"},
        BadPolicyCase{"no_groupby",
                      "pktstream.reduce(size, [f_sum]).collect(flow)"},
        BadPolicyCase{"no_collect", "pktstream.groupby(flow).reduce(size, [f_sum])"},
        BadPolicyCase{"filter_after_groupby",
                      "pktstream.groupby(flow).filter(tcp.exist).reduce(size, "
                      "[f_sum]).collect(flow)"},
        BadPolicyCase{"reduce_unknown_field",
                      "pktstream.groupby(flow).reduce(nosuch, [f_sum]).collect(flow)"},
        BadPolicyCase{"unknown_reduce_fn",
                      "pktstream.groupby(flow).reduce(size, [f_wat]).collect(flow)"},
        BadPolicyCase{"hist_missing_params",
                      "pktstream.groupby(flow).reduce(size, [ft_hist]).collect(flow)"},
        BadPolicyCase{"bad_percent_range",
                      "pktstream.groupby(flow).reduce(size, "
                      "[ft_percent{1.5}]).collect(flow)"},
        BadPolicyCase{"synth_without_reduce",
                      "pktstream.groupby(flow).synthesize(f_norm(size)).collect(flow)"},
        BadPolicyCase{"collect_before_compute",
                      "pktstream.groupby(flow).collect(flow)"},
        BadPolicyCase{"collect_unit_not_in_chain",
                      "pktstream.groupby(flow).reduce(size, [f_sum]).collect(host)"},
        BadPolicyCase{"broken_chain",
                      "pktstream.groupby(socket, flow).reduce(size, "
                      "[f_sum]).collect(flow)"},
        BadPolicyCase{"reduce_at_not_in_chain",
                      "pktstream.groupby(flow).reduce(size, [f_sum], host).collect(flow)"},
        BadPolicyCase{"mixed_collect_units",
                      "pktstream.groupby(host, channel).reduce(size, "
                      "[f_sum]).collect(host).reduce(size, [f_mean]).collect(channel)"},
        BadPolicyCase{"trailing_garbage",
                      "pktstream.groupby(flow).reduce(size, [f_sum]).collect(flow) extra"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(BuilderTest, BuildsEquivalentOfParsedPolicy) {
  auto built = PolicyBuilder("built")
                   .Filter(FilterExpr::TcpOnly())
                   .GroupBy(Granularity::kFlow)
                   .Map("one", "_", MapFn::kOne)
                   .Reduce("one", {ReduceSpec{ReduceFn::kSum}})
                   .Collect(Granularity::kFlow)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->ops.size(), 5u);
}

TEST(BuilderTest, RejectsBadPipeline) {
  auto bad = PolicyBuilder("bad").Reduce("size", {ReduceSpec{ReduceFn::kSum}}).Build();
  EXPECT_FALSE(bad.ok());
}

TEST(BuilderTest, NormalizesGranularityChain) {
  auto built = PolicyBuilder("chain")
                   .GroupBy({Granularity::kSocket, Granularity::kHost, Granularity::kChannel})
                   .Reduce("size", {ReduceSpec{ReduceFn::kSum}})
                   .Collect(Granularity::kSocket)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto* groupby = std::get_if<GroupByOp>(&built->ops[0]);
  ASSERT_NE(groupby, nullptr);
  ASSERT_EQ(groupby->chain.size(), 3u);
  EXPECT_EQ(groupby->chain[0], Granularity::kHost);
  EXPECT_EQ(groupby->chain[2], Granularity::kSocket);
}

TEST(BuilderTest, ReduceAtRestriction) {
  auto built = PolicyBuilder("at")
                   .GroupBy({Granularity::kHost, Granularity::kChannel})
                   .ReduceAt(Granularity::kHost, "size", {ReduceSpec{ReduceFn::kMean}})
                   .CollectPerPacket()
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
}

TEST(PolicyTest, LinesOfCodeCountsNonEmpty) {
  Policy policy;
  policy.source_text = "pktstream\n\n  .groupby(flow)\n# comment\n  .collect(flow)\n";
  EXPECT_EQ(policy.LinesOfCode(), 3);
}

TEST(PolicyTest, ToStringRoundTripsThroughParser) {
  auto policy = ParsePolicy("rt", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(ipt, [ft_hist{10000, 100}])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok());
  const std::string printed = policy->ToString();
  auto reparsed = ParsePolicy("rt2", printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << printed;
  EXPECT_EQ(reparsed->ops.size(), policy->ops.size());
}

TEST(PredicateTest, MatchesFields) {
  PacketRecord pkt;
  pkt.tuple = {1, 2, 100, 443, kProtoTcp};
  pkt.wire_bytes = 1000;
  EXPECT_TRUE(FilterExpr::TcpOnly().Matches(pkt));
  EXPECT_FALSE(FilterExpr::UdpOnly().Matches(pkt));
  FilterExpr expr{{Predicate{PredField::kDstPort, PredOp::kEq, 443},
                   Predicate{PredField::kSize, PredOp::kGe, 1000}}};
  EXPECT_TRUE(expr.Matches(pkt));
  pkt.wire_bytes = 999;
  EXPECT_FALSE(expr.Matches(pkt));
}

TEST(PredicateTest, EmptyFilterAcceptsAll) {
  FilterExpr expr;
  PacketRecord pkt;
  EXPECT_TRUE(expr.Matches(pkt));
}

}  // namespace
}  // namespace superfe
