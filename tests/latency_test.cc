// Tests for pipeline latency observability (src/obs/latency.h and the
// runtime wiring): log-bucket quantile accuracy against known
// distributions, snapshot merging, export formats, and the end-to-end
// breakdown contract — per-cause residency counts equal MgpvStats eviction
// counts, end-to-end dominates every single stage, and a smaller aging
// threshold shortens the aging-evicted residency tail.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "net/trace_gen.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "policy/parser.h"
#include "switchsim/evict.h"

namespace superfe {
namespace {

// One log bucket spans a factor of 10^0.2; a bucket-interpolated quantile
// of a distribution away from bucket 0 is exact to within that ratio.
const double kBucketRatio = std::pow(10.0, 0.2);

void ExpectWithinOneBucket(double estimate, double truth, const char* what) {
  EXPECT_GE(estimate, truth / kBucketRatio) << what;
  EXPECT_LE(estimate, truth * kBucketRatio) << what;
}

TEST(LatencyHistogramTest, BucketLayoutAndIndexing) {
  EXPECT_EQ(obs::LatencyHistogram::BoundNs(0), 100u);
  EXPECT_EQ(obs::LatencyHistogram::BoundNs(5), 1000u);
  EXPECT_EQ(obs::LatencyHistogram::BoundNs(20), 1000000u);
  EXPECT_EQ(obs::LatencyHistogram::BoundNs(40), 10000000000u);  // 10 s.

  // Upper bounds are inclusive (matching the fixed-bucket Histogram).
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(100), 0u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(101), 1u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(1000000), 20u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(1000001), 21u);
  // Past the last finite bound: the +Inf bucket.
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(20000000000u),
            obs::LatencyHistogram::kNumBounds);
}

TEST(LatencyHistogramTest, CountSumAndInfClamp) {
  obs::LatencyHistogram h;
  h.Observe(500);
  h.Observe(1500);
  h.Observe(20000000000u);  // +Inf bucket.
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNs(), 500u + 1500u + 20000000000u);
  EXPECT_EQ(h.BucketCount(obs::LatencyHistogram::kNumBounds), 1u);

  // A quantile landing in the +Inf bucket clamps to the top finite bound.
  const auto snap = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.QuantileNs(1.0),
                   static_cast<double>(obs::LatencyHistogram::BoundNs(
                       obs::LatencyHistogram::kNumBounds - 1)));
  // An empty snapshot yields 0.
  EXPECT_DOUBLE_EQ(obs::LatencyHistogram::Snapshot{}.QuantileNs(0.5), 0.0);
}

TEST(LatencyHistogramTest, QuantileUniform) {
  obs::LatencyHistogram h;
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 1; i <= kN; ++i) {
    h.Observe(i * 10);  // Uniform over {10, 20, ..., 1e6} ns.
  }
  const auto snap = h.TakeSnapshot();
  ExpectWithinOneBucket(snap.QuantileNs(0.50), 500000.0, "uniform p50");
  ExpectWithinOneBucket(snap.QuantileNs(0.99), 990000.0, "uniform p99");
  // Linear interpolation is near-exact for in-bucket-uniform data.
  EXPECT_NEAR(snap.QuantileNs(0.50), 500000.0, 5000.0);
}

TEST(LatencyHistogramTest, QuantileExponential) {
  obs::LatencyHistogram h;
  constexpr uint64_t kN = 100000;
  const double mean_ns = 1e6;
  for (uint64_t i = 0; i < kN; ++i) {
    // Deterministic inverse-CDF sampling.
    const double u = (static_cast<double>(i) + 0.5) / kN;
    h.Observe(static_cast<uint64_t>(-mean_ns * std::log(1.0 - u)));
  }
  const auto snap = h.TakeSnapshot();
  ExpectWithinOneBucket(snap.QuantileNs(0.50), mean_ns * std::log(2.0), "exp p50");
  ExpectWithinOneBucket(snap.QuantileNs(0.99), mean_ns * std::log(100.0), "exp p99");
}

TEST(LatencyHistogramTest, QuantilePointMassAtBucketEdge) {
  obs::LatencyHistogram h;
  const uint64_t edge = obs::LatencyHistogram::BoundNs(20);  // Exactly 1 ms.
  for (int i = 0; i < 1000; ++i) {
    h.Observe(edge);
  }
  const auto snap = h.TakeSnapshot();
  // The whole mass sits in bucket 20 = (BoundNs(19), BoundNs(20)]; the
  // interpolated estimate stays inside that bucket, i.e. within one
  // bucket's relative error of the true (edge) value.
  ExpectWithinOneBucket(snap.QuantileNs(0.50), static_cast<double>(edge), "edge p50");
  ExpectWithinOneBucket(snap.QuantileNs(0.99), static_cast<double>(edge), "edge p99");
  EXPECT_GT(snap.QuantileNs(0.50),
            static_cast<double>(obs::LatencyHistogram::BoundNs(19)));
  EXPECT_LE(snap.QuantileNs(0.99), static_cast<double>(edge));
}

TEST(LatencyHistogramTest, SnapshotMergeAddsExactly) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  a.Observe(100);
  a.Observe(10000);
  b.Observe(10000);
  b.Observe(5000000);
  auto merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum_ns, 100u + 10000u + 10000u + 5000000u);
  EXPECT_EQ(merged.buckets[obs::LatencyHistogram::BucketIndex(10000)], 2u);
  const obs::LatencyStageSummary s = merged.Summarize();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.MeanNs(), static_cast<double>(merged.sum_ns) / 4.0);
}

TEST(LatencyHistogramTest, ConcurrentObserveIsExact) {
  obs::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(1000 + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (1000 + static_cast<uint64_t>(t)) * kPerThread;
  }
  EXPECT_EQ(h.SumNs(), expected_sum);
}

TEST(LatencyHistogramTest, RegistryExportFormats) {
  obs::MetricsRegistry registry;
  obs::LatencyHistogram* h =
      registry.GetLatencyHistogram("lat_ns", {{"stage", "e2e"}}, "test latency");
  ASSERT_NE(h, nullptr);
  // Idempotent get; type clash with another kind yields null.
  EXPECT_EQ(h, registry.GetLatencyHistogram("lat_ns", {{"stage", "e2e"}}));
  EXPECT_EQ(registry.GetCounter("lat_ns"), nullptr);

  h->Observe(150);    // Bucket 1 (le 158).
  h->Observe(150);
  h->Observe(90000);  // le 100000.

  std::ostringstream prom;
  registry.WriteProm(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE lat_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{stage=\"e2e\",le=\"158\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{stage=\"e2e\",le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum{stage=\"e2e\"} 90300\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count{stage=\"e2e\"} 3\n"), std::string::npos);

  std::ostringstream json;
  JsonWriter writer(json, /*indent=*/0);
  registry.WriteJson(writer);
  const std::string jtext = json.str();
  EXPECT_NE(jtext.find("\"sum_ns\":90300"), std::string::npos);
  EXPECT_NE(jtext.find("\"quantiles_ns\""), std::string::npos);
  EXPECT_NE(jtext.find("\"le_ns\":158"), std::string::npos);
}

TEST(TraceClockTest, MonotoneMaxAcrossThreads) {
  obs::TraceClock clock;
  clock.Advance(100);
  clock.Advance(50);  // Never goes backwards.
  EXPECT_EQ(clock.Now(), 100u);
  clock.Advance(250);
  EXPECT_EQ(clock.Now(), 250u);
}

// --- Runtime integration -------------------------------------------------

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

Policy Parse(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

RunReport RunWithLatency(const Trace& trace, uint32_t workers, uint64_t aging_ns) {
  RuntimeConfig config;
  config.worker_threads = workers;
  config.obs.latency = true;
  config.mgpv.aging_timeout_ns = aging_ns;
  auto runtime = SuperFeRuntime::Create(Parse(kPolicy), config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  CollectingFeatureSink sink;
  return (*runtime)->Run(trace, &sink);
}

TEST(LatencyRuntimeTest, BreakdownContractWithWorkers) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 60000, 7);
  const RunReport report = RunWithLatency(trace, /*workers=*/4,
                                          /*aging_ns=*/10'000'000);
  ASSERT_TRUE(report.latency.enabled);
  const RunReport::LatencyBreakdown& b = report.latency;

  // (a) Per-cause residency observation counts equal the MgpvStats eviction
  // counts — they are recorded at the same code site.
  uint64_t total_evictions = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.residency_by_cause[i].count, report.mgpv.evictions[i])
        << EvictReasonName(static_cast<EvictReason>(i));
    total_evictions += report.mgpv.evictions[i];
  }
  EXPECT_EQ(b.mgpv_residency.count, total_evictions);
  EXPECT_EQ(b.mgpv_residency.count, report.mgpv.reports_out);
  EXPECT_GT(report.mgpv.evictions[static_cast<int>(EvictReason::kAging)], 0u);

  // Every report is observed once per downstream stage.
  EXPECT_EQ(b.queue_wait.count, report.mgpv.reports_out);
  EXPECT_EQ(b.worker_service.count, report.mgpv.reports_out);
  EXPECT_EQ(b.end_to_end.count, report.mgpv.reports_out);
  ASSERT_EQ(b.queue_wait_by_worker.size(), 4u);

  // (b) End-to-end dominates every single stage: per report,
  // e2e >= residency, queue wait, and service, and all stages share one
  // bucket grid, so the interpolated quantiles inherit the ordering.
  const double stage_max_p50 =
      std::max({b.mgpv_residency.p50_ns, b.queue_wait.p50_ns, b.worker_service.p50_ns});
  EXPECT_GE(b.end_to_end.p50_ns, stage_max_p50);
  const double stage_max_p99 =
      std::max({b.mgpv_residency.p99_ns, b.queue_wait.p99_ns, b.worker_service.p99_ns});
  EXPECT_GE(b.end_to_end.p99_ns, stage_max_p99);

  // Service attribution covers the Table-5 families and sums to 1.
  ASSERT_EQ(b.service_shares.size(), 6u);
  double fraction_sum = 0.0;
  for (const auto& share : b.service_shares) {
    fraction_sum += share.fraction;
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST(LatencyRuntimeTest, SmallerAgingThresholdShortensAgingTail) {
  // (c) The aging threshold bounds how long an idle batch lingers, so a
  // smaller threshold must strictly reduce the aging-evicted residency p99.
  const Trace trace = GenerateTrace(EnterpriseProfile(), 60000, 7);
  const RunReport fast = RunWithLatency(trace, /*workers=*/4, /*aging_ns=*/1'000'000);
  const RunReport slow = RunWithLatency(trace, /*workers=*/4, /*aging_ns=*/10'000'000);
  const int aging = static_cast<int>(EvictReason::kAging);
  ASSERT_GT(fast.latency.residency_by_cause[aging].count, 0u);
  ASSERT_GT(slow.latency.residency_by_cause[aging].count, 0u);
  EXPECT_LT(fast.latency.residency_by_cause[aging].p99_ns,
            slow.latency.residency_by_cause[aging].p99_ns);
}

TEST(LatencyRuntimeTest, SerialEndToEndEqualsResidency) {
  // With no cluster there is no queue and the trace clock cannot advance
  // mid-report: queue wait is unobserved, service is 0 trace-time ns, and
  // every end-to-end measurement equals the report's residency exactly.
  const Trace trace = GenerateTrace(CampusProfile(), 20000, 3);
  const RunReport report = RunWithLatency(trace, /*workers=*/0,
                                          /*aging_ns=*/10'000'000);
  ASSERT_TRUE(report.latency.enabled);
  const RunReport::LatencyBreakdown& b = report.latency;
  EXPECT_EQ(b.queue_wait.count, 0u);
  EXPECT_TRUE(b.queue_wait_by_worker.empty());
  EXPECT_EQ(b.worker_service.count, report.mgpv.reports_out);
  EXPECT_EQ(b.worker_service.sum_ns, 0u);
  EXPECT_EQ(b.end_to_end.count, b.mgpv_residency.count);
  EXPECT_EQ(b.end_to_end.sum_ns, b.mgpv_residency.sum_ns);
  EXPECT_DOUBLE_EQ(b.end_to_end.p50_ns, b.mgpv_residency.p50_ns);
  EXPECT_DOUBLE_EQ(b.end_to_end.p99_ns, b.mgpv_residency.p99_ns);
}

TEST(LatencyRuntimeTest, DisabledByDefaultAndExportsGated) {
  RuntimeConfig config;
  config.obs.metrics = true;  // Metrics without latency tracking.
  auto runtime = SuperFeRuntime::Create(Parse(kPolicy), config);
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(CampusProfile(), 5000, 3);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  EXPECT_FALSE(report.latency.enabled);

  std::ostringstream json;
  ASSERT_TRUE((*runtime)->WriteMetricsJson(json));
  EXPECT_EQ(json.str().find("\"latency\""), std::string::npos);
  EXPECT_EQ(json.str().find("superfe_latency_"), std::string::npos);
  // No sampler configured: the standalone samples export declines.
  std::ostringstream samples;
  EXPECT_FALSE((*runtime)->WriteSamplesJson(samples));
}

TEST(LatencyRuntimeTest, MetricsJsonCarriesBreakdown) {
  RuntimeConfig config;
  config.worker_threads = 2;
  config.obs.latency = true;
  auto runtime = SuperFeRuntime::Create(Parse(kPolicy), config);
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(CampusProfile(), 20000, 3);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  ASSERT_TRUE(report.latency.enabled);

  std::ostringstream json;
  ASSERT_TRUE((*runtime)->WriteMetricsJson(json));
  const std::string text = json.str();
  EXPECT_NE(text.find("\"latency\""), std::string::npos);
  EXPECT_NE(text.find("\"mgpv_residency_by_cause\""), std::string::npos);
  EXPECT_NE(text.find("\"end_to_end\""), std::string::npos);
  EXPECT_NE(text.find("\"service_shares\""), std::string::npos);
  EXPECT_NE(text.find("superfe_latency_e2e_ns"), std::string::npos);

  std::ostringstream prom;
  ASSERT_TRUE((*runtime)->WriteMetricsProm(prom));
  EXPECT_NE(prom.str().find("superfe_latency_mgpv_residency_ns_bucket{cause=\"aging\""),
            std::string::npos);
  EXPECT_NE(prom.str().find("superfe_latency_e2e_ns_count"), std::string::npos);
}

}  // namespace
}  // namespace superfe
