#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace superfe {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE 802.3).
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, SeedChangesResult) {
  const char* data = "abc";
  EXPECT_NE(Crc32(data, 3, 0), Crc32(data, 3, 1));
}

TEST(Murmur3Test, Deterministic) {
  const char* data = "hello world";
  EXPECT_EQ(Murmur3(data, 11, 7), Murmur3(data, 11, 7));
  EXPECT_NE(Murmur3(data, 11, 7), Murmur3(data, 11, 8));
}

TEST(Murmur3Test, TailBytesMatter) {
  uint8_t a[5] = {1, 2, 3, 4, 5};
  uint8_t b[5] = {1, 2, 3, 4, 6};
  EXPECT_NE(Murmur3(a, 5), Murmur3(b, 5));
}

TEST(Mix64Test, AvalanchesLowBits) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  std::vector<double> xs(100000);
  for (auto& x : xs) {
    x = rng.Normal();
  }
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(Variance(xs), 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  std::vector<double> xs(100000);
  for (auto& x : xs) {
    x = rng.Exponential(2.0);
  }
  EXPECT_NEAR(Mean(xs), 0.5, 0.01);
}

TEST(RngTest, LogNormalMean) {
  Rng rng(19);
  const double mu = 1.0;
  const double sigma = 0.5;
  std::vector<double> xs(200000);
  for (auto& x : xs) {
    x = rng.LogNormal(mu, sigma);
  }
  EXPECT_NEAR(Mean(xs), std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(RngTest, ParetoLowerBound) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ZipfRange) {
  Rng rng(29);
  uint64_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Zipf(100, 1.1);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) {
      ++ones;
    }
  }
  // Rank 1 should dominate under Zipf.
  EXPECT_GT(ones, 2000u);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  std::vector<double> xs(100000);
  for (auto& x : xs) {
    x = static_cast<double>(rng.Geometric(0.25));
  }
  EXPECT_NEAR(Mean(xs), 4.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(37);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = static_cast<double>(rng.Poisson(6.5));
  }
  EXPECT_NEAR(Mean(xs), 6.5, 0.1);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedIndex(weights) == 1) {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.01);
}

TEST(StatsTest, MeanVarianceKnown) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, EmptyIsZero) {
  std::vector<double> xs;
  EXPECT_EQ(Mean(xs), 0.0);
  EXPECT_EQ(Variance(xs), 0.0);
  EXPECT_EQ(Min(xs), 0.0);
  EXPECT_EQ(Max(xs), 0.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_EQ(Min(xs), -1.0);
  EXPECT_EQ(Max(xs), 7.0);
}

TEST(StatsTest, SkewnessOfSymmetricIsZero) {
  std::vector<double> xs = {-2.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_NEAR(Skewness(xs), 0.0, 1e-12);
}

TEST(StatsTest, KurtosisOfConstantIsZero) {
  std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_EQ(Kurtosis(xs), 0.0);
}

TEST(StatsTest, PerfectCorrelation) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, AntiCorrelation) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(AsciiTableTest, FormatsAligned) {
  AsciiTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 2     |"), std::string::npos);
}

TEST(AsciiTableTest, NumberFormatting) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace superfe
