// Concurrency tests for the parallel NicCluster pipeline: serial-vs-parallel
// feature-multiset equivalence, queue-saturation drop accounting, and the
// Flush()-barrier-then-read regression. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "nicsim/mgpv_recorder.h"
#include "nicsim/nic_cluster.h"
#include "net/trace_gen.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("parallel", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

const char* kMultiGranularityPolicy = R"(
pktstream
  .groupby(host, flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum], host)
  .reduce(size, [f_sum, f_max], flow)
  .collect(flow)
)";

// Order-independent comparison key: (group key bytes, timestamp, values).
using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Captures the switch output for `trace` once, so serial and parallel
// clusters consume a bit-identical message stream.
MgpvRecorder RecordStream(const CompiledPolicy& compiled, const Trace& trace) {
  MgpvRecorder recorder;
  FeSwitch fe(compiled, &recorder);
  for (const auto& pkt : trace.packets()) {
    fe.OnPacket(pkt);
  }
  fe.Flush();
  return recorder;
}

std::vector<FeatureVector> RunCluster(const CompiledPolicy& compiled,
                                      const MgpvRecorder& stream, size_t members,
                                      const NicClusterOptions& options) {
  CollectingFeatureSink sink;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, members, &sink, options)).value();
  stream.DeliverTo(*cluster);
  cluster->Flush();
  return sink.vectors();
}

TEST(ParallelClusterTest, SerialAndParallelFeatureMultisetsMatch) {
  for (const char* source : {kFlowStatsPolicy, kMultiGranularityPolicy}) {
    const CompiledPolicy compiled = CompileSource(source);
    const Trace trace = GenerateTrace(EnterpriseProfile(), 30000, 77);
    const MgpvRecorder stream = RecordStream(compiled, trace);

    for (size_t workers : {1u, 2u, 4u}) {
      NicClusterOptions serial;
      serial.parallel = false;
      const auto reference = SortedMultiset(RunCluster(compiled, stream, workers, serial));

      NicClusterOptions parallel;
      parallel.parallel = true;
      const auto threaded = SortedMultiset(RunCluster(compiled, stream, workers, parallel));

      ASSERT_EQ(reference.size(), threaded.size()) << "workers=" << workers;
      EXPECT_EQ(reference, threaded) << "workers=" << workers;
    }
  }
}

TEST(ParallelClusterTest, RuntimeWorkerThreadsMatchSerialReference) {
  // End-to-end: the worker_threads knob must not change the feature
  // multiset for a flow-unit policy (flow == CG group, so single-NIC and
  // hash-partitioned runs see identical per-group streams).
  auto policy = ParsePolicy("rt", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 25000, 99);

  RuntimeConfig serial_config;
  auto serial_rt = SuperFeRuntime::Create(*policy, serial_config);
  ASSERT_TRUE(serial_rt.ok()) << serial_rt.status().ToString();
  CollectingFeatureSink serial_sink;
  const RunReport serial_report = (*serial_rt)->Run(trace, &serial_sink);

  RuntimeConfig parallel_config;
  parallel_config.worker_threads = 4;
  auto parallel_rt = SuperFeRuntime::Create(*policy, parallel_config);
  ASSERT_TRUE(parallel_rt.ok()) << parallel_rt.status().ToString();
  ASSERT_NE((*parallel_rt)->cluster(), nullptr);
  CollectingFeatureSink parallel_sink;
  const RunReport parallel_report = (*parallel_rt)->Run(trace, &parallel_sink);

  EXPECT_EQ(SortedMultiset(serial_sink.vectors()), SortedMultiset(parallel_sink.vectors()));
  EXPECT_EQ(serial_report.nic.cells, parallel_report.nic.cells);
  EXPECT_EQ(serial_report.nic.vectors_emitted, parallel_report.nic.vectors_emitted);
  // Lossless pipeline by default: nothing dropped anywhere.
  for (size_t i = 0; i < (*parallel_rt)->cluster()->size(); ++i) {
    EXPECT_EQ((*parallel_rt)->cluster()->worker_stats(i).reports_dropped, 0u);
  }
}

// A sink the test can block, to wedge a worker deterministically and
// saturate its queue.
class GatedSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    arrived_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
  }

  void WaitForFirst() {
    std::unique_lock<std::mutex> lock(mu_);
    arrived_cv_.wait(lock, [&] { return arrived_ > 0; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable arrived_cv_;
  std::condition_variable open_cv_;
  bool open_ = false;
  int arrived_ = 0;
};

TEST(ParallelClusterTest, QueueSaturationCountsDropsInsteadOfLosingThem) {
  // Per-packet collection: every cell emits a vector, so a gated sink
  // blocks the worker mid-report and the producer saturates the queue.
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)");
  const Trace trace = GenerateTrace(EnterpriseProfile(), 4000, 13);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  GatedSink gate;
  NicClusterOptions options;
  options.parallel = true;
  options.drop_on_overflow = true;
  options.queue_capacity = 2;
  options.enqueue_batch = 1;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 1, &gate, options)).value();

  // First report wedges the worker at the gate; everything past
  // queue_capacity is dropped-and-counted.
  stream.DeliverTo(*cluster);
  gate.WaitForFirst();
  const NicWorkerStats mid = cluster->worker_stats(0);
  EXPECT_GT(mid.reports_dropped, 0u);
  EXPECT_GT(mid.cells_dropped, 0u);

  gate.Open();
  cluster->Flush();

  // Conservation: every offered cell was either processed or counted as
  // dropped — none vanished silently.
  const NicWorkerStats ws = cluster->worker_stats(0);
  const FeNicStats nic = cluster->AggregateStats();
  EXPECT_EQ(nic.cells + ws.cells_dropped, stream.cells());
  EXPECT_EQ(nic.reports, ws.reports_enqueued);
  // Drops only start once the queue is actually full.
  EXPECT_GE(ws.queue_high_watermark, options.queue_capacity);
}

TEST(ParallelClusterTest, FlushBarrierThenReadIsConsistent) {
  // Regression: Flush() must drain every queue and run each member's flush
  // before returning, so an immediate stats/vector read sees the complete
  // run (this was racy when flush didn't rendezvous with the workers).
  const CompiledPolicy compiled = CompileSource(kFlowStatsPolicy);
  const Trace trace = GenerateTrace(CampusProfile(), 20000, 5);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  for (int round = 0; round < 3; ++round) {
    CollectingFeatureSink sink;
    NicClusterOptions options;
    options.parallel = true;
    options.queue_capacity = 8;  // Small: forces backpressure mid-run.
    auto cluster =
        std::move(NicCluster::Create(compiled, FeNicConfig{}, 4, &sink, options)).value();
    stream.DeliverTo(*cluster);
    cluster->Flush();

    // Immediately after the barrier every offered cell must be accounted
    // and every group's vector emitted.
    const FeNicStats stats = cluster->AggregateStats();
    EXPECT_EQ(stats.cells, stream.cells());
    EXPECT_EQ(stats.vectors_emitted, sink.vectors().size());
    EXPECT_GT(sink.vectors().size(), 0u);

    // Lossless mode: overload is absorbed by backpressure, never drops.
    for (size_t i = 0; i < cluster->size(); ++i) {
      EXPECT_EQ(cluster->worker_stats(i).reports_dropped, 0u);
    }
  }
}

TEST(ParallelClusterTest, BackpressureBlocksLosslessly) {
  // Deterministic backpressure: wedge the single worker at a gated sink,
  // feed more batches than the queue holds from a producer thread, then
  // open the gate — the producer must have blocked (not dropped) and every
  // cell must come through.
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)");
  const Trace trace = GenerateTrace(EnterpriseProfile(), 3000, 21);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  GatedSink gate;
  NicClusterOptions options;
  options.parallel = true;
  options.drop_on_overflow = false;  // Backpressure mode.
  options.queue_capacity = 2;
  options.enqueue_batch = 1;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 1, &gate, options)).value();

  std::thread producer([&] { stream.DeliverTo(*cluster); });
  gate.WaitForFirst();  // Worker is wedged; the producer fills the queue and
                        // must stall (backpressure_waits counts stall entry,
                        // so the blocked producer is visible while blocked).
  while (cluster->worker_stats(0).backpressure_waits == 0) {
    std::this_thread::yield();
  }
  gate.Open();
  producer.join();
  cluster->Flush();

  const NicWorkerStats ws = cluster->worker_stats(0);
  EXPECT_GT(ws.backpressure_waits, 0u);
  EXPECT_EQ(ws.reports_dropped, 0u);
  EXPECT_EQ(cluster->AggregateStats().cells, stream.cells());
}

TEST(ParallelClusterTest, FgSyncBroadcastReachesAllMembersInOrder) {
  const CompiledPolicy compiled = CompileSource(kFlowStatsPolicy);
  NicClusterOptions options;
  options.parallel = true;
  CollectingFeatureSink sink;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 3, &sink, options)).value();

  FgSyncMessage sync;
  sync.index = 7;
  for (int i = 0; i < 10; ++i) {
    cluster->OnFgSync(sync);
  }
  cluster->Flush();
  for (size_t i = 0; i < cluster->size(); ++i) {
    EXPECT_EQ(cluster->nic(i).Snapshot().fg_syncs, 10u);
    EXPECT_EQ(cluster->worker_stats(i).syncs_enqueued, 10u);
  }
}

}  // namespace
}  // namespace superfe
