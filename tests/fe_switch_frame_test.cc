// Raw-frame ingestion: FE-Switch must parse wire frames like the P4 parser,
// reconstruct flow direction, and batch identically to the record path.
#include <gtest/gtest.h>

#include "core/feature_vector.h"
#include "net/trace_gen.h"
#include "net/wire.h"
#include "nicsim/fe_nic.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("frames", source);
  EXPECT_TRUE(policy.ok());
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum])
  .collect(flow)
)";

TEST(FeSwitchFrameTest, FramePathMatchesRecordPath) {
  const CompiledPolicy compiled = CompileSource(kPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 5000, 3);

  CollectingFeatureSink record_sink;
  auto record_nic = std::move(FeNic::Create(compiled, FeNicConfig{}, &record_sink)).value();
  FeSwitch record_switch(compiled, record_nic.get());
  for (const auto& pkt : trace.packets()) {
    record_switch.OnPacket(pkt);
  }
  record_switch.Flush();
  record_nic->Flush();

  CollectingFeatureSink frame_sink;
  auto frame_nic = std::move(FeNic::Create(compiled, FeNicConfig{}, &frame_sink)).value();
  FeSwitch frame_switch(compiled, frame_nic.get());
  for (const auto& pkt : trace.packets()) {
    const auto frame = EncodeFrame(pkt);
    frame_switch.OnFrame(frame.data(), frame.size(), pkt.timestamp_ns);
  }
  frame_switch.Flush();
  frame_nic->Flush();

  EXPECT_EQ(frame_switch.stats().frames_unparseable, 0u);
  EXPECT_EQ(frame_switch.stats().packets_batched, record_switch.stats().packets_batched);
  ASSERT_EQ(frame_sink.vectors().size(), record_sink.vectors().size());

  // Total packet and byte sums agree (frame sizes include the encoder's
  // minimum-frame padding, identical to wire_bytes for generated traffic).
  auto totals = [](const CollectingFeatureSink& sink) {
    double pkts = 0.0;
    double bytes = 0.0;
    for (const auto& v : sink.vectors()) {
      pkts += v.values[0];
      bytes += v.values[1];
    }
    return std::pair<double, double>(pkts, bytes);
  };
  EXPECT_EQ(totals(frame_sink), totals(record_sink));
}

TEST(FeSwitchFrameTest, GarbageFramesCountedNotBatched) {
  const CompiledPolicy compiled = CompileSource(kPolicy);
  CollectingFeatureSink sink;
  auto nic = std::move(FeNic::Create(compiled, FeNicConfig{}, &sink)).value();
  FeSwitch fe(compiled, nic.get());

  const uint8_t garbage[32] = {0xde, 0xad};
  fe.OnFrame(garbage, sizeof(garbage), 0);
  EXPECT_EQ(fe.stats().frames_unparseable, 1u);
  EXPECT_EQ(fe.stats().packets_batched, 0u);
}

TEST(FeSwitchFrameTest, DirectionInferredFirstSeen) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(dir, one, f_direction)
  .reduce(dir, [f_sum])
  .collect(flow)
)");
  CollectingFeatureSink sink;
  auto nic = std::move(FeNic::Create(compiled, FeNicConfig{}, &sink)).value();
  FeSwitch fe(compiled, nic.get());

  PacketRecord fwd;
  fwd.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  fwd.wire_bytes = 100;
  PacketRecord bwd;
  bwd.tuple = fwd.tuple.Reversed();
  bwd.wire_bytes = 100;

  const auto f1 = EncodeFrame(fwd);
  const auto f2 = EncodeFrame(bwd);
  fe.OnFrame(f1.data(), f1.size(), 0);
  fe.OnFrame(f2.data(), f2.size(), 1000);
  fe.OnFrame(f1.data(), f1.size(), 2000);
  fe.Flush();
  nic->Flush();

  // Directions: +1, -1, +1 -> sum of signs = 1.
  ASSERT_EQ(sink.vectors().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.vectors()[0].values[0], 1.0);
}

TEST(WireOptionsTest, ParsesIpv4WithOptions) {
  // Hand-build a frame with IHL = 6 (one option word).
  PacketRecord pkt;
  pkt.tuple = {MakeIp(1, 1, 1, 1), MakeIp(2, 2, 2, 2), 10, 20, kProtoTcp};
  pkt.wire_bytes = 80;
  auto frame = EncodeFrame(pkt);
  // Widen the IP header: shift the TCP header right by 4 bytes.
  frame.insert(frame.begin() + kEthHeaderLen + kIpv4MinHeaderLen, {0x01, 0x01, 0x01, 0x01});
  frame[kEthHeaderLen] = 0x46;  // Version 4, IHL 6.
  auto parsed = ParseFrame(frame.data(), frame.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tuple.src_port, 10);
  EXPECT_EQ(parsed->tuple.dst_port, 20);
}

}  // namespace
}  // namespace superfe
