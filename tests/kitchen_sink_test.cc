// Kitchen-sink integration test: one policy per Table 5 function, each run
// end to end through the full switch+NIC pipeline against a hand-computed
// expectation on a deterministic flow.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/runtime.h"
#include "policy/parser.h"

namespace superfe {
namespace {

// Deterministic single flow: sizes 100, 200, ..., 1000; 1 ms gaps; strictly
// alternating directions starting forward.
Trace DeterministicFlow() {
  Trace trace;
  FiveTuple tuple{MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  for (int i = 0; i < 10; ++i) {
    PacketRecord pkt;
    pkt.direction = i % 2 == 0 ? Direction::kForward : Direction::kBackward;
    pkt.tuple = pkt.direction == Direction::kForward ? tuple : tuple.Reversed();
    pkt.timestamp_ns = static_cast<uint64_t>(i) * 1000000;
    pkt.wire_bytes = static_cast<uint32_t>((i + 1) * 100);
    trace.Add(pkt);
  }
  return trace;
}

std::vector<double> SizesOf(const Trace& trace) {
  std::vector<double> xs;
  for (const auto& pkt : trace.packets()) {
    xs.push_back(pkt.wire_bytes);
  }
  return xs;
}

// Runs `source` over the deterministic flow with exact arithmetic and
// returns the single emitted vector.
std::vector<double> RunPolicy(const std::string& source) {
  auto policy = ParsePolicy("sink", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  RuntimeConfig config;
  config.nic.exec.nic_arithmetic = false;
  auto runtime = SuperFeRuntime::Create(*policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  CollectingFeatureSink sink;
  (*runtime)->Run(DeterministicFlow(), &sink);
  EXPECT_EQ(sink.vectors().size(), 1u);
  return sink.vectors().empty() ? std::vector<double>{} : sink.vectors()[0].values;
}

std::string FlowReduce(const std::string& reduce_list, const std::string& maps = "") {
  return "pktstream\n  .groupby(flow)\n" + maps + "  .reduce(" + reduce_list +
         ")\n  .collect(flow)\n";
}

TEST(KitchenSinkTest, SumMeanVarStdMinMax) {
  const auto out = RunPolicy(FlowReduce("size, [f_sum, f_mean, f_var, f_std, f_min, f_max]"));
  ASSERT_EQ(out.size(), 6u);
  const auto sizes = SizesOf(DeterministicFlow());
  EXPECT_DOUBLE_EQ(out[0], 5500.0);
  EXPECT_DOUBLE_EQ(out[1], Mean(sizes));
  EXPECT_NEAR(out[2], Variance(sizes), 1e-6);
  EXPECT_NEAR(out[3], StdDev(sizes), 1e-9);
  EXPECT_DOUBLE_EQ(out[4], 100.0);
  EXPECT_DOUBLE_EQ(out[5], 1000.0);
}

TEST(KitchenSinkTest, SkewAndKurtosis) {
  const auto out = RunPolicy(FlowReduce("size, [f_skew, f_kur]"));
  ASSERT_EQ(out.size(), 2u);
  const auto sizes = SizesOf(DeterministicFlow());
  EXPECT_NEAR(out[0], Skewness(sizes), 1e-9);
  EXPECT_NEAR(out[1], Kurtosis(sizes), 1e-9);
}

TEST(KitchenSinkTest, BidirectionalMagnitudeRadius) {
  const auto out = RunPolicy(FlowReduce("size, [f_mag, f_radius, f_cov, f_pcc]"));
  ASSERT_EQ(out.size(), 4u);
  // Forward sizes: 100,300,...,900 (mean 500); backward: 200,...,1000 (600).
  const std::vector<double> fwd = {100, 300, 500, 700, 900};
  const std::vector<double> bwd = {200, 400, 600, 800, 1000};
  EXPECT_NEAR(out[0], std::sqrt(Mean(fwd) * Mean(fwd) + Mean(bwd) * Mean(bwd)), 1e-6);
  const double vf = Variance(fwd);
  const double vb = Variance(bwd);
  EXPECT_NEAR(out[1], std::sqrt(vf * vf + vb * vb), 1e-6);
  // Covariance/PCC are Kitsune-approximation values; check bounds only.
  EXPECT_TRUE(std::isfinite(out[2]));
  EXPECT_GE(out[3], -1.0);
  EXPECT_LE(out[3], 1.0);
}

TEST(KitchenSinkTest, Cardinality) {
  // Distinct sizes: 10 values -> HLL estimate near 10.
  const auto out = RunPolicy(FlowReduce("size, [f_card]"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 10.0, 3.0);
}

TEST(KitchenSinkTest, ArrayPacking) {
  const auto out = RunPolicy(FlowReduce("size, [f_array{10}]"));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(out[i], (i + 1) * 100.0);
  }
}

TEST(KitchenSinkTest, HistogramPdfCdf) {
  const auto out =
      RunPolicy(FlowReduce("size, [ft_hist{250, 4}, f_pdf{250, 4}, f_cdf{250, 4}]"));
  ASSERT_EQ(out.size(), 12u);
  // Sizes 100..1000 with 250-wide bins: [0,250)={100,200},
  // [250,500)={300,400}, [500,750)={500,600,700}, last (clamped)={800..1000}.
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 3.0);
  EXPECT_DOUBLE_EQ(out[4], 0.2);                 // PDF.
  EXPECT_DOUBLE_EQ(out[11], 1.0);                // CDF tail.
}

TEST(KitchenSinkTest, Percentile) {
  const auto out = RunPolicy(FlowReduce("size, [ft_percent{0.5}]"));
  ASSERT_EQ(out.size(), 1u);
  // Log-scale estimate of the median (550): its bucket is [512, 1024).
  EXPECT_GE(out[0], 256.0);
  EXPECT_LE(out[0], 1024.0);
}

TEST(KitchenSinkTest, MapOneAndDirection) {
  const auto out = RunPolicy(FlowReduce("dir, [f_sum]",
                                        "  .map(one, _, f_one)\n"
                                        "  .map(dir, one, f_direction)\n"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);  // 5 forward - 5 backward.
}

TEST(KitchenSinkTest, MapIptAndSpeed) {
  const auto out = RunPolicy(FlowReduce("ipt, [f_max]",
                                        "  .map(ipt, tstamp, f_ipt)\n"));
  ASSERT_EQ(out.size(), 1u);
  // Per-direction gaps: 2 ms between same-direction packets.
  EXPECT_DOUBLE_EQ(out[0], 2000000.0);

  const auto speed = RunPolicy(FlowReduce("speed, [f_max]",
                                          "  .map(speed, size, f_speed)\n"));
  ASSERT_EQ(speed.size(), 1u);
  EXPECT_GT(speed[0], 0.0);
}

TEST(KitchenSinkTest, MapBurst) {
  const auto out = RunPolicy(FlowReduce("burst, [f_max]",
                                        "  .map(burst, _, f_burst)\n"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // Strict alternation: runs of length 1.
}

TEST(KitchenSinkTest, SynthesizeNormAndSample) {
  const auto out = RunPolicy(
      "pktstream\n  .groupby(flow)\n  .reduce(size, [f_array{10}])\n"
      "  .synthesize(f_norm(size.f_array))\n  .synthesize(ft_sample(size.f_array, 5))\n"
      "  .collect(flow)\n");
  ASSERT_EQ(out.size(), 5u);
  // Normalized to max 1000 then resampled over 10 points at 5 positions.
  EXPECT_DOUBLE_EQ(out[0], 0.1);
  EXPECT_DOUBLE_EQ(out[4], 1.0);
}

TEST(KitchenSinkTest, SynthesizeMarker) {
  const auto out = RunPolicy(
      "pktstream\n  .groupby(flow)\n  .map(dirsize, size, f_direction)\n"
      "  .reduce(dirsize, [f_array{16}])\n  .synthesize(f_marker(dirsize.f_array))\n"
      "  .synthesize(ft_sample(dirsize.f_array, 4))\n  .collect(flow)\n");
  ASSERT_EQ(out.size(), 4u);
  // Alternating signs: a marker at every packet; final cumulative = -500
  // (100-200+300-400+...-1000).
  EXPECT_DOUBLE_EQ(out[3], -500.0);
}

TEST(KitchenSinkTest, DampedWeight) {
  const auto out = RunPolicy(FlowReduce("one, [f_sum{decay=1}]",
                                        "  .map(one, _, f_one)\n"));
  ASSERT_EQ(out.size(), 1u);
  // 10 samples, 1 ms apart, lambda=1: near-zero decay over 9 ms.
  EXPECT_NEAR(out[0], 10.0, 0.05);
  EXPECT_LT(out[0], 10.0);
}

TEST(KitchenSinkTest, FlowsPerHostCardinality) {
  // The Section 4.1 example: "the number of TCP flows that each IP address
  // establishes" — f_card over the FG-key hash at the host granularity.
  auto policy = ParsePolicy("fph", R"(
pktstream
  .filter(tcp.exist)
  .groupby(host, socket)
  .reduce(fgkey, [f_card], host)
  .collect(host)
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto runtime = SuperFeRuntime::Create(*policy, RuntimeConfig{});
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  // One client opens 30 distinct TCP connections to one server.
  Trace trace;
  for (int i = 0; i < 30; ++i) {
    for (int k = 0; k < 3; ++k) {
      PacketRecord pkt;
      pkt.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2),
                   static_cast<uint16_t>(20000 + i), 80, kProtoTcp};
      pkt.timestamp_ns = static_cast<uint64_t>(i) * 100000 + k * 10;
      pkt.wire_bytes = 100;
      trace.Add(pkt);
    }
  }
  CollectingFeatureSink sink;
  (*runtime)->Run(trace, &sink);
  ASSERT_EQ(sink.vectors().size(), 1u);  // One host group.
  EXPECT_NEAR(sink.vectors()[0].values[0], 30.0, 6.0);  // HLL estimate of 30 flows.
}

}  // namespace
}  // namespace superfe
