// Robustness "fuzz-lite" tests: randomized mutations and garbage inputs
// must produce clean errors, never crashes or hangs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "apps/policies.h"
#include "common/rng.h"
#include "net/pcap.h"
#include "net/wire.h"
#include "policy/compile.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const char* kSeedPolicy = R"(
pktstream
  .filter(tcp.exist && dst_port == 443)
  .groupby(host, channel, socket)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum{decay=5}], host)
  .reduce(size, [f_mean, f_var, ft_hist{100, 16}])
  .reduce(ipt, [ft_percent{0.9}], channel)
  .synthesize(f_norm(size.f_mean))
  .collect(pkt)
)";

TEST(ParserFuzzTest, SingleCharacterMutationsNeverCrash) {
  const std::string seed = kSeedPolicy;
  Rng rng(0xf022);
  int accepted = 0;
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string mutated = seed;
    const int mutations = 1 + static_cast<int>(rng.UniformU64(3));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.UniformU64(mutated.size());
      const char replacement = static_cast<char>(32 + rng.UniformU64(95));
      mutated[pos] = replacement;
    }
    auto policy = ParsePolicy("fuzz", mutated);
    if (policy.ok()) {
      ++accepted;
      // Whatever parsed must also compile or fail cleanly.
      auto compiled = Compile(*policy);
      (void)compiled;
    }
  }
  // Some mutations (comments, whitespace, digits) survive; most do not.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 500);
}

TEST(ParserFuzzTest, TruncationsNeverCrash) {
  const std::string seed = kSeedPolicy;
  for (size_t len = 0; len < seed.size(); len += 7) {
    auto policy = ParsePolicy("trunc", seed.substr(0, len));
    (void)policy;
  }
  SUCCEED();
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(0xf023);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string garbage(rng.UniformU64(400), ' ');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.UniformU64(256));
    }
    auto policy = ParsePolicy("garbage", garbage);
    EXPECT_FALSE(policy.ok());
  }
}

TEST(ParserFuzzTest, DeeplyNestedBracesRejected) {
  std::string source = "pktstream.groupby(flow).reduce(size, [f_mean";
  for (int i = 0; i < 200; ++i) {
    source += "{1";
  }
  auto policy = ParsePolicy("nested", source);
  EXPECT_FALSE(policy.ok());
}

TEST(PcapFuzzTest, GarbageFilesRejected) {
  Rng rng(0xf024);
  const std::string path = ::testing::TempDir() + "/superfe_fuzz.pcap";
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::ofstream out(path, std::ios::binary);
    const size_t len = rng.UniformU64(512);
    for (size_t i = 0; i < len; ++i) {
      out.put(static_cast<char>(rng.UniformU64(256)));
    }
    out.close();
    auto trace = ReadPcap(path);
    (void)trace;  // ok() or clean error; must not crash.
  }
  std::remove(path.c_str());
  SUCCEED();
}

TEST(PcapFuzzTest, TruncatedValidFileRejectedCleanly) {
  // Write a valid pcap then truncate at every 64-byte boundary.
  Trace trace;
  PacketRecord pkt;
  pkt.tuple = {MakeIp(1, 2, 3, 4), MakeIp(5, 6, 7, 8), 10, 20, kProtoTcp};
  pkt.wire_bytes = 100;
  for (int i = 0; i < 5; ++i) {
    pkt.timestamp_ns = i * 1000;
    trace.Add(pkt);
  }
  const std::string path = ::testing::TempDir() + "/superfe_trunc.pcap";
  ASSERT_TRUE(WritePcap(path, trace).ok());
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  for (size_t len = 0; len < full.size(); len += 64) {
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(), static_cast<std::streamsize>(len));
    out.close();
    auto loaded = ReadPcap(path);
    (void)loaded;
  }
  std::remove(path.c_str());
  SUCCEED();
}

namespace pcap_bytes {

// Little-endian nanosecond pcap global header.
std::string GlobalHeader() {
  std::string h(24, '\0');
  const uint32_t magic = 0xa1b23c4d;
  const uint32_t snaplen = 65535;
  const uint32_t linktype = 1;
  std::memcpy(&h[0], &magic, 4);
  h[4] = 2;  // Major.
  h[6] = 4;  // Minor.
  std::memcpy(&h[16], &snaplen, 4);
  std::memcpy(&h[20], &linktype, 4);
  return h;
}

std::string RecordHeader(uint32_t cap_len, uint32_t orig_len) {
  std::string r(16, '\0');
  std::memcpy(&r[8], &cap_len, 4);
  std::memcpy(&r[12], &orig_len, 4);
  return r;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace pcap_bytes

TEST(PcapFuzzTest, TruncatedTailKeepsIntactPrefix) {
  // A capture cut off mid-stream (crashed writer) must yield the intact
  // prefix plus an exact truncation count, not an error.
  Trace trace;
  PacketRecord pkt;
  pkt.tuple = {MakeIp(1, 2, 3, 4), MakeIp(5, 6, 7, 8), 10, 20, kProtoTcp};
  pkt.wire_bytes = 100;
  for (int i = 0; i < 5; ++i) {
    pkt.timestamp_ns = i * 1000;
    trace.Add(pkt);
  }
  const std::string path = ::testing::TempDir() + "/superfe_tail.pcap";
  ASSERT_TRUE(WritePcap(path, trace).ok());
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const size_t record_bytes = (full.size() - 24) / 5;
  for (size_t keep = 0; keep < 5; ++keep) {
    // Cut halfway into record `keep` — records [0, keep) stay intact.
    const size_t len = 24 + keep * record_bytes + record_bytes / 2;
    pcap_bytes::WriteFile(path, full.substr(0, len));
    PcapReadStats stats;
    auto loaded = ReadPcap(path, &stats);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->size(), keep);
    EXPECT_EQ(stats.frames_decoded, keep);
    EXPECT_EQ(stats.truncated_records, 1u);
    EXPECT_EQ(stats.corrupt_records, 0u);
  }
  std::remove(path.c_str());
}

TEST(PcapFuzzTest, OversizedCapLenFailsAndCounts) {
  const std::string path = ::testing::TempDir() + "/superfe_oversized.pcap";
  pcap_bytes::WriteFile(path, pcap_bytes::GlobalHeader() +
                                  pcap_bytes::RecordHeader(1u << 20, 1u << 20));
  PcapReadStats stats;
  auto loaded = ReadPcap(path, &stats);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(stats.corrupt_records, 1u);
  std::remove(path.c_str());
}

TEST(PcapFuzzTest, InconsistentOrigLenRepairedAndCounted) {
  // orig_len < cap_len is impossible for a real capture; the reader clamps
  // wire bytes to the bytes present and counts the record corrupt.
  Trace trace;
  PacketRecord pkt;
  pkt.tuple = {MakeIp(9, 9, 9, 9), MakeIp(8, 8, 8, 8), 1234, 443, kProtoTcp};
  pkt.wire_bytes = 200;
  pkt.timestamp_ns = 5000;
  trace.Add(pkt);
  const std::string path = ::testing::TempDir() + "/superfe_origlen.pcap";
  ASSERT_TRUE(WritePcap(path, trace).ok());
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const uint32_t bogus_orig = 1;  // Less than the encoded frame's cap_len.
  std::memcpy(&full[24 + 12], &bogus_orig, 4);
  pcap_bytes::WriteFile(path, full);
  PcapReadStats stats;
  auto loaded = ReadPcap(path, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  uint32_t cap_len;
  std::memcpy(&cap_len, &full[24 + 8], 4);
  EXPECT_EQ(loaded->packets()[0].wire_bytes, cap_len);
  EXPECT_EQ(stats.corrupt_records, 1u);
  std::remove(path.c_str());
}

TEST(PcapFuzzTest, RandomRecordsAfterValidHeaderNeverCrash) {
  // Valid global header, garbage record stream: every outcome must be a
  // clean ok()/error, and the stats buckets must cover what was seen.
  Rng rng(0xf025);
  const std::string path = ::testing::TempDir() + "/superfe_randrec.pcap";
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::string bytes = pcap_bytes::GlobalHeader();
    const size_t len = rng.UniformU64(512);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    pcap_bytes::WriteFile(path, bytes);
    PcapReadStats stats;
    auto loaded = ReadPcap(path, &stats);
    if (loaded.ok()) {
      EXPECT_EQ(stats.frames_decoded + stats.frames_skipped +
                    stats.truncated_records + stats.corrupt_records,
                stats.records);
    }
  }
  std::remove(path.c_str());
  SUCCEED();
}

TEST(WireFuzzTest, TruncatedFramesNeverCrash) {
  PacketRecord pkt;
  pkt.tuple = {MakeIp(1, 2, 3, 4), MakeIp(5, 6, 7, 8), 10, 20, kProtoTcp};
  pkt.wire_bytes = 1200;
  pkt.timestamp_ns = 42;
  const std::vector<uint8_t> frame = EncodeFrame(pkt);
  for (size_t len = 0; len <= frame.size(); ++len) {
    auto parsed = ParseFrame(frame.data(), len);
    if (len == frame.size()) {
      EXPECT_TRUE(parsed.ok());
    }
  }
  SUCCEED();
}

// Round trip: every app policy pretty-prints to a form that re-parses and
// re-compiles to the identical feature dimension.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, ToStringReparsesEquivalently) {
  const AppPolicy app = AllAppPolicies()[GetParam()];
  const std::string printed = app.policy.ToString();
  auto reparsed = ParsePolicy(app.name + "-rt", printed);
  ASSERT_TRUE(reparsed.ok()) << app.name << ": " << reparsed.status().ToString() << "\n"
                             << printed;
  auto original = Compile(app.policy);
  auto round_trip = Compile(*reparsed);
  ASSERT_TRUE(original.ok() && round_trip.ok()) << app.name;
  EXPECT_EQ(round_trip->nic_program.FeatureDimension(),
            original->nic_program.FeatureDimension())
      << app.name;
  EXPECT_EQ(round_trip->switch_program.chain, original->switch_program.chain) << app.name;
  EXPECT_EQ(round_trip->switch_program.MetadataBytesPerPacket(),
            original->switch_program.MetadataBytesPerPacket())
      << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, RoundTripTest, ::testing::Range(0, 10),
                         [](const auto& info) {
                           std::string name = AllAppPolicies()[info.param].name;
                           for (auto& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace superfe
