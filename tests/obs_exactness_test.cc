// Flush-exactness contract tests for the batch-local observability fast
// path (docs/OBSERVABILITY.md, "Hot-path design"): every per-packet obs
// site buffers into a worker-local WorkerObsBlock and folds into the shared
// registry once per batch, yet quiescent totals must equal the RunReport /
// serial-oracle counters at every shard x worker shape — including under
// mid-run member crashes, flush-deadline recovery, and the legacy
// per-packet cadence — and the sampler's final capture must converge to the
// same exact totals. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "fault/fault_plan.h"
#include "net/trace_gen.h"
#include "nicsim/mgpv_recorder.h"
#include "nicsim/nic_cluster.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

const char* kPerPacketPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)";

Policy ParseSource(const std::string& source) {
  auto policy = ParsePolicy("obs-exact", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

// Order-independent comparison key: (group key bytes, timestamp, values).
using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Exact child value, failing the test if the child does not exist.
double Value(obs::MetricsRegistry* metrics, const std::string& name,
             const obs::LabelSet& labels = {}) {
  auto v = metrics->Value(name, labels);
  EXPECT_TRUE(v.has_value()) << name;
  return v.value_or(-1.0);
}

// Sum over per-shard children (unlabeled when shards == 1).
double ShardSum(obs::MetricsRegistry* metrics, const std::string& name,
                uint32_t shards) {
  if (shards <= 1) {
    return Value(metrics, name);
  }
  double total = 0.0;
  for (uint32_t s = 0; s < shards; ++s) {
    total += Value(metrics, name, {{"shard", std::to_string(s)}});
  }
  return total;
}

double NicSum(obs::MetricsRegistry* metrics, const std::string& name,
              uint32_t members) {
  double total = 0.0;
  for (uint32_t i = 0; i < members; ++i) {
    total += Value(metrics, name, {{"nic", std::to_string(i)}});
  }
  return total;
}

// The contract: after Run(), every batched counter equals its RunReport
// field exactly — the hot tier may defer, never lose or double-count.
void ExpectMetricsMatchReport(obs::MetricsRegistry* metrics, const RunReport& report,
                              uint32_t shards, uint32_t workers,
                              const std::string& label) {
  const uint32_t members = std::max<uint32_t>(workers, 1);
  EXPECT_EQ(Value(metrics, "superfe_replay_packets_total"), report.offered.packets)
      << label;
  EXPECT_EQ(ShardSum(metrics, "superfe_switch_packets_seen_total", shards),
            report.switch_stats.packets_seen)
      << label;
  EXPECT_EQ(ShardSum(metrics, "superfe_switch_packets_batched_total", shards),
            report.switch_stats.packets_batched)
      << label;
  // MGPV counters are one shared family: every shard folds into the same
  // unlabeled children.
  EXPECT_EQ(Value(metrics, "superfe_mgpv_reports_out_total"), report.mgpv.reports_out)
      << label;
  EXPECT_EQ(Value(metrics, "superfe_mgpv_cells_out_total"), report.mgpv.cells_out)
      << label;
  EXPECT_EQ(NicSum(metrics, "superfe_nic_cells_total", members), report.nic.cells)
      << label;
  EXPECT_EQ(NicSum(metrics, "superfe_nic_reports_total", members), report.nic.reports)
      << label;
  EXPECT_EQ(NicSum(metrics, "superfe_nic_vectors_emitted_total", members),
            report.nic.vectors_emitted)
      << label;
  // The batching tier itself must have run and stayed within its cadence.
  EXPECT_GE(Value(metrics, "superfe_obs_flushes_total"), 1.0) << label;
}

struct ObsRun {
  std::unique_ptr<SuperFeRuntime> runtime;
  RunReport report;
  std::vector<FeatureVector> vectors;
};

ObsRun RunFullObs(const Policy& policy, const Trace& trace, uint32_t shards,
                  uint32_t workers, uint32_t batch_packets) {
  RuntimeConfig config;
  config.switch_shards = shards;
  config.worker_threads = workers;
  config.obs.metrics = true;
  config.obs.latency = true;
  config.obs.profile = true;
  config.obs.sample_interval_ms = 1;
  config.obs.batch_packets = batch_packets;
  auto runtime = SuperFeRuntime::Create(policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  ObsRun run;
  run.runtime = std::move(runtime).value();
  CollectingFeatureSink sink;
  run.report = run.runtime->Run(trace, &sink);
  run.vectors = sink.vectors();
  return run;
}

// The acceptance matrix: metrics + latency + cycle profiling + batching all
// on, across shards {1,2,4} x workers {0,1,4}. Totals must equal both the
// RunReport and a no-obs serial oracle's outputs.
TEST(ObsExactnessTest, ExactTotalsAtEveryShardWorkerShape) {
  const Policy policy = ParseSource(kFlowStatsPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 15000, /*seed=*/17);

  // Oracle: serial, observability fully off.
  RunReport oracle_report;
  std::vector<VectorKey> oracle;
  {
    auto runtime = SuperFeRuntime::Create(policy, RuntimeConfig{});
    ASSERT_TRUE(runtime.ok());
    CollectingFeatureSink sink;
    oracle_report = (*runtime)->Run(trace, &sink);
    oracle = SortedMultiset(sink.vectors());
  }
  ASSERT_FALSE(oracle.empty());

  for (uint32_t shards : {1u, 2u, 4u}) {
    for (uint32_t workers : {0u, 1u, 4u}) {
      const std::string label =
          "shards=" + std::to_string(shards) + " workers=" + std::to_string(workers);
      ObsRun run = RunFullObs(policy, trace, shards, workers, /*batch_packets=*/4096);
      obs::MetricsRegistry* metrics = run.runtime->metrics();
      ASSERT_NE(metrics, nullptr) << label;

      // Observability must not perturb the pipeline's outputs.
      EXPECT_EQ(oracle, SortedMultiset(run.vectors)) << label;
      EXPECT_EQ(oracle_report.nic.cells, run.report.nic.cells) << label;

      ExpectMetricsMatchReport(metrics, run.report, shards, workers, label);

      // Cycle profiling ran: the stages this shape exercises accumulated.
      EXPECT_GT(Value(metrics, "superfe_cycles_total", {{"stage", "mgpv"}}), 0.0)
          << label;
      EXPECT_GT(Value(metrics, "superfe_cycles_total", {{"stage", "feature_kernels"}}),
                0.0)
          << label;
      if (workers > 0) {
        EXPECT_GT(Value(metrics, "superfe_cycles_total", {{"stage", "dequeue"}}), 0.0)
            << label;
      }
      ASSERT_EQ(run.report.latency.measured_cycle_shares.size(), 4u) << label;
      double fraction_sum = 0.0;
      for (const auto& s : run.report.latency.measured_cycle_shares) {
        fraction_sum += s.fraction;
      }
      EXPECT_NEAR(fraction_sum, 1.0, 1e-9) << label;
    }
  }
}

// The legacy per-packet cadence (batch_packets = 1) is just the smallest
// batch: totals stay exact and identical to the default cadence's.
TEST(ObsExactnessTest, LegacyPerPacketCadenceStaysExact) {
  const Policy policy = ParseSource(kFlowStatsPolicy);
  const Trace trace = GenerateTrace(CampusProfile(), 8000, /*seed=*/23);

  ObsRun batched = RunFullObs(policy, trace, 2, 2, /*batch_packets=*/4096);
  ObsRun legacy = RunFullObs(policy, trace, 2, 2, /*batch_packets=*/1);
  ExpectMetricsMatchReport(batched.runtime->metrics(), batched.report, 2, 2, "batched");
  ExpectMetricsMatchReport(legacy.runtime->metrics(), legacy.report, 2, 2, "legacy");
  EXPECT_EQ(SortedMultiset(batched.vectors), SortedMultiset(legacy.vectors));
  // Per-packet cadence flushes (far) more often for the same totals.
  EXPECT_GT(Value(legacy.runtime->metrics(), "superfe_obs_flushes_total"),
            Value(batched.runtime->metrics(), "superfe_obs_flushes_total"));
}

// A member crash mid-run exercises the failover fences: the dead member's
// buffered deltas must fold at AbandonState(), and the surviving members'
// totals must still reconcile exactly against the fault accounting.
TEST(ObsExactnessTest, ExactUnderMidRunMemberCrash) {
  const Policy policy = ParseSource(kFlowStatsPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, /*seed=*/29);
  auto plan = FaultPlan::Parse("crash member=1 at_packet=5000 detect_ms=2\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  for (uint32_t shards : {1u, 2u}) {
    const std::string label = "crash shards=" + std::to_string(shards);
    RuntimeConfig config;
    config.switch_shards = shards;
    config.worker_threads = 4;
    config.obs.metrics = true;
    config.obs.latency = true;
    config.obs.profile = true;
    config.obs.batch_packets = 4096;
    config.fault.plan = *plan;
    auto runtime = SuperFeRuntime::Create(policy, config);
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    CollectingFeatureSink sink;
    const RunReport report = (*runtime)->Run(trace, &sink);
    obs::MetricsRegistry* metrics = (*runtime)->metrics();

    ASSERT_TRUE(report.fault.enabled) << label;
    EXPECT_TRUE(report.fault.reconciled) << label;
    EXPECT_GE(report.fault.stats.members_crashed, 1u) << label;
    ExpectMetricsMatchReport(metrics, report, shards, 4, label);
  }
}

// Captures the switch output once so every cluster sees the same stream.
MgpvRecorder RecordStream(const CompiledPolicy& compiled, const Trace& trace) {
  MgpvRecorder recorder;
  FeSwitch fe(compiled, &recorder);
  for (const auto& pkt : trace.packets()) {
    fe.OnPacket(pkt);
  }
  fe.Flush();
  return recorder;
}

// A sink the test can block, to wedge a worker deterministically.
class GatedSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    arrived_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
  }

  void WaitForFirst() {
    std::unique_lock<std::mutex> lock(mu_);
    arrived_cv_.wait(lock, [&] { return arrived_ > 0; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable arrived_cv_;
  std::condition_variable open_cv_;
  bool open_ = false;
  int arrived_ = 0;
};

// Flush-deadline path: a missed barrier abandons the wait but the worker
// keeps draining; once the retry barrier completes, the batched counters
// must have caught up to the exact aggregate — the kFlush block flush
// happens before the barrier is released.
TEST(ObsExactnessTest, FlushDeadlineRecoveryStaysExact) {
  auto compiled = Compile(ParseSource(kPerPacketPolicy));
  ASSERT_TRUE(compiled.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 2000, /*seed=*/61);
  const MgpvRecorder stream = RecordStream(*compiled, trace);

  obs::MetricsRegistry metrics;
  GatedSink gate;
  NicClusterOptions options;
  options.parallel = true;
  options.metrics = &metrics;
  options.queue_capacity = 1 << 16;  // Producer never blocks.
  options.obs_batch_packets = 4096;
  auto cluster =
      std::move(NicCluster::Create(*compiled, FeNicConfig{}, 1, &gate, options)).value();

  stream.DeliverTo(*cluster);
  gate.WaitForFirst();  // Worker is wedged mid-report at the gate.
  const Status status = cluster->FlushWithDeadline(50);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);

  gate.Open();  // Un-wedge: the abandoned barrier drains in the background.
  const Status retry = cluster->FlushWithDeadline(0);
  ASSERT_TRUE(retry.ok()) << retry.ToString();

  const FeNicStats stats = cluster->AggregateStats();
  EXPECT_EQ(Value(&metrics, "superfe_nic_cells_total", {{"nic", "0"}}), stats.cells);
  EXPECT_EQ(Value(&metrics, "superfe_nic_reports_total", {{"nic", "0"}}), stats.reports);
  EXPECT_EQ(Value(&metrics, "superfe_nic_vectors_emitted_total", {{"nic", "0"}}),
            stats.vectors_emitted);
  EXPECT_GE(Value(&metrics, "superfe_obs_flushes_total"), 1.0);
}

// Sampler staleness (the batching hazard): the final capture happens after
// every flush fence, so the last point of each sampled series equals the
// exact total even though mid-run points lag by up to one batch.
TEST(ObsSamplerTest, SampledSeriesConvergeToExactTotals) {
  const Policy policy = ParseSource(kFlowStatsPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 12000, /*seed=*/31);
  ObsRun run = RunFullObs(policy, trace, 2, 2, /*batch_packets=*/4096);
  ASSERT_GE(run.report.obs.samples_captured, 1u);

  // Reach into the sampler's series via the JSON-free accessor path: the
  // registry's current value IS the converged total (asserted above), so it
  // suffices to check the last sample captured those same values.
  std::ostringstream json;
  ASSERT_TRUE(run.runtime->WriteSamplesJson(json));
  const std::string out = json.str();

  const auto expect_final = [&](const std::string& key, uint64_t want) {
    // The series is ordered; the exact total must appear as a sample value
    // of the key's series (the final capture), formatted as an integer.
    const size_t series_pos = out.find("\"" + key + "\"");
    ASSERT_NE(series_pos, std::string::npos) << key;
    std::ostringstream want_str;
    want_str << "\"" << key << "\": " << static_cast<double>(want);
    EXPECT_NE(out.find(want_str.str(), series_pos), std::string::npos)
        << key << " never reached " << want << " in sampled series";
  };
  expect_final("superfe_replay_packets_total", run.report.offered.packets);

  // The cluster queue-depth gauges were refreshed by the pre-sample hook
  // and read 0 after the flush barrier.
  EXPECT_EQ(Value(run.runtime->metrics(), "superfe_cluster_queue_depth",
                  {{"worker", "0"}}),
            0.0);

  // Max flush lag never exceeded the configured cadence for packet-cadence
  // blocks (worker blocks flush per dequeued batch and report their own
  // batch sizes).
  for (uint32_t s = 0; s < 2; ++s) {
    const auto lag = run.runtime->metrics()->Value(
        "superfe_obs_max_flush_lag_packets", {{"block", "switch-shard-" + std::to_string(s)}});
    ASSERT_TRUE(lag.has_value()) << s;
    EXPECT_LE(*lag, 4096.0) << s;
  }
}

}  // namespace
}  // namespace superfe
