#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "core/runtime.h"
#include "core/software_extractor.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

Policy Parse(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

TEST(RuntimeTest, EndToEndProducesVectors) {
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 5);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);

  EXPECT_EQ(report.switch_stats.packets_seen, trace.size());
  EXPECT_EQ(report.nic.cells, trace.size());
  const uint64_t flows = trace.ComputeStats().flow_count;
  EXPECT_EQ(sink.vectors().size(), flows);
  EXPECT_GT(report.sustainable_gbps, 0.0);
}

TEST(RuntimeTest, ExactFeaturesMatchSoftwareBaseline) {
  // Deterministic sum/min/max features must be identical whether computed
  // through MGPV batching + FE-NIC or directly in software: batching must
  // not lose or duplicate packets, and per-group order is preserved.
  auto policy = Parse(kFlowStatsPolicy);
  RuntimeConfig config;
  config.nic.exec.nic_arithmetic = false;  // Exact arithmetic on both sides.
  auto runtime = SuperFeRuntime::Create(policy, config);
  ASSERT_TRUE(runtime.ok());

  const Trace trace = GenerateTrace(CampusProfile(), 30000, 6);
  CollectingFeatureSink superfe_sink;
  (*runtime)->Run(trace, &superfe_sink);

  auto compiled = Compile(policy);
  ASSERT_TRUE(compiled.ok());
  auto software = SoftwareExtractor::Create(*compiled);
  ASSERT_TRUE(software.ok());
  CollectingFeatureSink software_sink;
  (*software)->Run(trace, &software_sink, SoftwareDeployment{});

  ASSERT_EQ(superfe_sink.vectors().size(), software_sink.vectors().size());

  // Index software vectors by group key bytes.
  auto key_of = [](const FeatureVector& v) {
    return std::string(reinterpret_cast<const char*>(v.group.bytes.data()), v.group.length);
  };
  std::map<std::string, std::vector<double>> expected;
  for (const auto& v : software_sink.vectors()) {
    expected[key_of(v)] = v.values;
  }
  for (const auto& v : superfe_sink.vectors()) {
    auto it = expected.find(key_of(v));
    ASSERT_NE(it, expected.end());
    ASSERT_EQ(v.values.size(), it->second.size());
    for (size_t i = 0; i < v.values.size(); ++i) {
      EXPECT_NEAR(v.values[i], it->second[i], 1e-9) << "feature " << i;
    }
  }
}

TEST(RuntimeTest, SuperFeFasterThanSoftwareByOrders) {
  auto policy = Parse(kFlowStatsPolicy);
  auto runtime = SuperFeRuntime::Create(policy, RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());

  const Trace trace = GenerateTrace(MawiIxpProfile(), 50000, 7);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);

  auto compiled = Compile(policy);
  ASSERT_TRUE(compiled.ok());
  auto software = SoftwareExtractor::Create(*compiled);
  ASSERT_TRUE(software.ok());
  const SoftwareRunReport sw = (*software)->Run(trace, nullptr, SoftwareDeployment{});

  // The headline Fig 9 property: SuperFE sustains far more than the
  // original software deployment (we require > 10x here; the bench reports
  // the full ~100x with the paper's deployment parameters).
  EXPECT_GT(report.sustainable_gbps, 10.0 * sw.deployed_gbps);
}

TEST(RuntimeTest, CoreSweepMonotone) {
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 8);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  double prev = 0.0;
  for (uint32_t cores : {1u, 2u, 8u, 30u, 60u, 120u}) {
    const double gbps = (*runtime)->SustainableGbps(report, cores);
    EXPECT_GE(gbps, prev);
    prev = gbps;
  }
}

TEST(RuntimeTest, ReportsBottleneck) {
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 10000, 9);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  EXPECT_TRUE(std::string(report.bottleneck) == "nic-compute" ||
              std::string(report.bottleneck) == "switch-nic-link" ||
              std::string(report.bottleneck) == "switch-capacity");
  EXPECT_LE(report.sustainable_gbps, 3300.0);
}

TEST(RuntimeTest, SwitchResourcesAvailable) {
  auto runtime = SuperFeRuntime::Create(Parse(kFlowStatsPolicy), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const SwitchResourceUsage usage = (*runtime)->SwitchResources();
  EXPECT_GT(usage.salus, 0u);
  EXPECT_GT((*runtime)->NicMemoryUtilization(), 0.0);
}

TEST(SoftwareExtractorTest, MeasuresRealTime) {
  auto compiled = Compile(Parse(kFlowStatsPolicy));
  ASSERT_TRUE(compiled.ok());
  auto software = SoftwareExtractor::Create(*compiled);
  ASSERT_TRUE(software.ok());
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 10);
  const SoftwareRunReport report = (*software)->Run(trace, nullptr, SoftwareDeployment{});
  EXPECT_EQ(report.packets, trace.size());
  EXPECT_GT(report.measured_ns_per_packet, 0.0);
  EXPECT_GT(report.deployed_gbps, 0.0);
  EXPECT_GT(report.cpp_gbps, report.deployed_gbps);  // Interpreter slowdown.
}

TEST(RuntimeTest, FilteredPolicyOnlyProcessesMatching) {
  auto runtime = SuperFeRuntime::Create(Parse(R"(
pktstream
  .filter(udp.exist)
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)"),
                                        RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const Trace trace = GenerateTrace(CampusProfile(), 20000, 11);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  EXPECT_LT(report.filter_pass_fraction, 1.0);
  EXPECT_GT(report.filter_pass_fraction, 0.0);
  EXPECT_EQ(report.nic.cells, report.switch_stats.packets_batched);
}

}  // namespace
}  // namespace superfe
