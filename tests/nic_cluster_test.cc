#include <gtest/gtest.h>

#include "nicsim/nic_cluster.h"
#include "net/trace_gen.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("cluster", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

const char* kCountPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(flow)
)";

TEST(NicClusterTest, RejectsEmptyCluster) {
  const CompiledPolicy compiled = CompileSource(kCountPolicy);
  CollectingFeatureSink sink;
  EXPECT_FALSE(NicCluster::Create(compiled, FeNicConfig{}, 0, &sink).ok());
}

TEST(NicClusterTest, DistributesLoadAndConservesCells) {
  const CompiledPolicy compiled = CompileSource(kCountPolicy);
  CollectingFeatureSink sink;
  auto cluster = std::move(NicCluster::Create(compiled, FeNicConfig{}, 4, &sink)).value();
  FeSwitch fe(compiled, cluster.get());

  const Trace trace = GenerateTrace(EnterpriseProfile(), 30000, 8);
  for (const auto& pkt : trace.packets()) {
    fe.OnPacket(pkt);
  }
  fe.Flush();
  cluster->Flush();

  uint64_t total_cells = 0;
  int members_with_work = 0;
  for (size_t i = 0; i < cluster->size(); ++i) {
    total_cells += cluster->nic(i).stats().cells;
    members_with_work += cluster->nic(i).stats().cells > 0 ? 1 : 0;
  }
  EXPECT_EQ(total_cells, trace.size());
  EXPECT_EQ(members_with_work, 4);
  // Hash routing over many flows balances well.
  EXPECT_LT(cluster->LoadImbalance(), 1.3);

  // Per-flow counts still sum to the packet count (no loss at the router).
  double count_sum = 0.0;
  for (const auto& v : sink.vectors()) {
    count_sum += v.values[0];
  }
  EXPECT_DOUBLE_EQ(count_sum, static_cast<double>(trace.size()));
}

TEST(NicClusterTest, GroupNeverSplitsAcrossMembers) {
  const CompiledPolicy compiled = CompileSource(kCountPolicy);
  CollectingFeatureSink sink;
  auto cluster = std::move(NicCluster::Create(compiled, FeNicConfig{}, 3, &sink)).value();
  FeSwitch fe(compiled, cluster.get());

  // One flow, many packets spread over many reports.
  Rng rng(4);
  FiveTuple tuple{MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  for (const auto& pkt : GenerateFlow(tuple, 500, 0, 100.0, {{500, 1.0}}, 0.6, rng)) {
    fe.OnPacket(pkt);
  }
  fe.Flush();
  cluster->Flush();

  // Exactly one vector with the full count: all reports of the flow landed
  // on the same member.
  ASSERT_EQ(sink.vectors().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.vectors()[0].values[0], 500.0);
}

TEST(NicClusterTest, MoreNicsMoreThroughput) {
  const CompiledPolicy compiled = CompileSource(kCountPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 6);

  auto run_with = [&](size_t nic_count) {
    CollectingFeatureSink sink;
    auto cluster =
        std::move(NicCluster::Create(compiled, FeNicConfig{}, nic_count, &sink)).value();
    FeSwitch fe(compiled, cluster.get());
    for (const auto& pkt : trace.packets()) {
      fe.OnPacket(pkt);
    }
    fe.Flush();
    cluster->Flush();
    return cluster->ThroughputPps(60);
  };

  const double one = run_with(1);
  const double four = run_with(4);
  EXPECT_GT(four, one * 3.0);  // Near-linear scale-out.
}

TEST(FeNicIdleTest, IdleTimeoutEmitsWithoutFlush) {
  const CompiledPolicy compiled = CompileSource(kCountPolicy);
  CollectingFeatureSink sink;
  FeNicConfig config;
  config.idle_timeout_ns = 1000000;  // 1 ms.
  auto nic = std::move(FeNic::Create(compiled, config, &sink)).value();
  FeSwitch fe(compiled, nic.get());

  // Flow A at t=0, then unrelated traffic 10 ms later triggers the sweep.
  PacketRecord a;
  a.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 80, kProtoTcp};
  a.timestamp_ns = 0;
  a.wire_bytes = 100;
  fe.OnPacket(a);
  // Force flow A's report out of the switch quickly with a tiny cache.
  fe.mutable_cache().Flush();

  PacketRecord b;
  b.tuple = {MakeIp(10, 0, 0, 3), MakeIp(10, 0, 0, 4), 2000, 80, kProtoTcp};
  b.timestamp_ns = 10000000;
  b.wire_bytes = 100;
  fe.OnPacket(b);
  fe.mutable_cache().Flush();

  // Flow A's vector was emitted by the idle sweep, before any NIC flush.
  ASSERT_GE(sink.vectors().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.vectors()[0].values[0], 1.0);
}

TEST(GroupTableEraseTest, EraseRemovesBucketAndDramEntries) {
  GroupTable<int> table(1, 1);
  bool via_dram = false;
  PacketRecord p1;
  p1.tuple.src_ip = 1;
  PacketRecord p2;
  p2.tuple.src_ip = 2;
  const GroupKey k1 = GroupKey::ForPacket(p1, Granularity::kHost);
  const GroupKey k2 = GroupKey::ForPacket(p2, Granularity::kHost);
  table.FindOrCreate(k1, 0, [] { return 1; }, via_dram);
  table.FindOrCreate(k2, 0, [] { return 2; }, via_dram);  // Overflows to DRAM.
  EXPECT_TRUE(via_dram);

  EXPECT_TRUE(table.Erase(k2, 0));
  EXPECT_EQ(table.Find(k2, 0), nullptr);
  EXPECT_TRUE(table.Erase(k1, 0));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Erase(k1, 0));
}

}  // namespace
}  // namespace superfe
