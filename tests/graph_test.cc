#include <gtest/gtest.h>

#include <set>

#include "policy/granularity_graph.h"

namespace superfe {
namespace {

// Every node must appear in exactly one chain; consecutive chain members
// must be connected in the transitive refinement order.
void CheckCover(const GranularityGraph& graph, const std::vector<std::vector<int>>& chains) {
  std::set<int> seen;
  for (const auto& chain : chains) {
    EXPECT_FALSE(chain.empty());
    for (int node : chain) {
      EXPECT_TRUE(seen.insert(node).second) << "node " << node << " covered twice";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), graph.node_count());
}

TEST(GranularityGraphTest, ChainStaysOneChain) {
  // The Kitsune dependency chain: host -> channel -> socket.
  GranularityGraph graph;
  const int host = graph.AddNode("host");
  const int channel = graph.AddNode("channel");
  const int socket = graph.AddNode("socket");
  ASSERT_TRUE(graph.AddEdge(host, channel).ok());
  ASSERT_TRUE(graph.AddEdge(channel, socket).ok());

  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 1u);
  EXPECT_EQ((*chains)[0], (std::vector<int>{host, channel, socket}));
}

TEST(GranularityGraphTest, DiamondNeedsTwoChains) {
  //      host
  //     /    \.
  //  subnet  proto-class
  //     \    /
  //     socket
  GranularityGraph graph;
  const int host = graph.AddNode("host");
  const int subnet = graph.AddNode("subnet-pair");
  const int proto = graph.AddNode("proto-class");
  const int socket = graph.AddNode("socket");
  ASSERT_TRUE(graph.AddEdge(host, subnet).ok());
  ASSERT_TRUE(graph.AddEdge(host, proto).ok());
  ASSERT_TRUE(graph.AddEdge(subnet, socket).ok());
  ASSERT_TRUE(graph.AddEdge(proto, socket).ok());

  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 2u);  // Dilworth: max antichain {subnet, proto}.
  CheckCover(graph, *chains);
}

TEST(GranularityGraphTest, AntichainNeedsOneChainEach) {
  GranularityGraph graph;
  for (int i = 0; i < 5; ++i) {
    graph.AddNode(std::string("g") + std::to_string(i));
  }
  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 5u);
  CheckCover(graph, *chains);
}

TEST(GranularityGraphTest, TransitiveSkipsAllowedInChains) {
  // host -> channel -> socket plus a direct host -> socket edge; still one
  // chain.
  GranularityGraph graph;
  const int host = graph.AddNode("host");
  const int channel = graph.AddNode("channel");
  const int socket = graph.AddNode("socket");
  ASSERT_TRUE(graph.AddEdge(host, channel).ok());
  ASSERT_TRUE(graph.AddEdge(channel, socket).ok());
  ASSERT_TRUE(graph.AddEdge(host, socket).ok());
  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 1u);
}

TEST(GranularityGraphTest, ForestSplitsPerLeafPath) {
  // One coarse root refining into three independent fine granularities:
  // chains = 3 (root joins one of them).
  GranularityGraph graph;
  const int root = graph.AddNode("host");
  for (int i = 0; i < 3; ++i) {
    const int leaf = graph.AddNode("leaf" + std::to_string(i));
    ASSERT_TRUE(graph.AddEdge(root, leaf).ok());
  }
  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 3u);
  CheckCover(graph, *chains);
}

TEST(GranularityGraphTest, CycleRejected) {
  GranularityGraph graph;
  const int a = graph.AddNode("a");
  const int b = graph.AddNode("b");
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  ASSERT_TRUE(graph.AddEdge(b, a).ok());
  EXPECT_FALSE(graph.IsDag());
  EXPECT_FALSE(graph.SplitIntoMinimumChains().ok());
}

TEST(GranularityGraphTest, SelfEdgeRejected) {
  GranularityGraph graph;
  const int a = graph.AddNode("a");
  EXPECT_FALSE(graph.AddEdge(a, a).ok());
  EXPECT_FALSE(graph.AddEdge(a, 7).ok());
}

TEST(GranularityGraphTest, LargerRandomDagIsCovered) {
  // Layered DAG: 3 layers x 4 nodes, edges only forward; minimum chains = 4.
  GranularityGraph graph;
  int nodes[3][4];
  for (int layer = 0; layer < 3; ++layer) {
    for (int i = 0; i < 4; ++i) {
      nodes[layer][i] =
          graph.AddNode(std::string("n") + std::to_string(layer) + std::to_string(i));
    }
  }
  for (int layer = 0; layer + 1 < 3; ++layer) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        ASSERT_TRUE(graph.AddEdge(nodes[layer][i], nodes[layer + 1][j]).ok());
      }
    }
  }
  auto chains = graph.SplitIntoMinimumChains();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 4u);
  CheckCover(graph, *chains);
  for (const auto& chain : *chains) {
    EXPECT_EQ(chain.size(), 3u);  // One node per layer.
  }
}

}  // namespace
}  // namespace superfe
