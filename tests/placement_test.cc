#include <gtest/gtest.h>

#include "nicsim/placement.h"

namespace superfe {
namespace {

StateItem State(const std::string& name, uint32_t bytes, uint32_t accesses) {
  return StateItem{name, bytes, accesses};
}

TEST(PlacementTest, EmptyProblem) {
  PlacementProblem problem;
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objective, 0u);
}

TEST(PlacementTest, SingleStateGoesToFastestLevel) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  problem.groups_per_granularity = 1024;
  problem.states = {State("s", 8, 3)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment.size(), 1u);
  EXPECT_EQ(result->assignment[0], MemLevel::kCls);
  EXPECT_EQ(result->objective, 3u * problem.arch.memory(MemLevel::kCls).latency_cycles);
}

TEST(PlacementTest, HotStateWinsFastMemory) {
  PlacementProblem problem;
  // Bus budget CLS with width 4 and 13B key: 64/4 - 13 = 3 bytes. Make the
  // budget meaningful with width 1 and few enough groups that capacity does
  // not interfere.
  problem.table_width = {1, 1, 1, 1};
  problem.groups_per_granularity = 1024;
  problem.key_bytes = 4;
  // Two states compete; only one fits into CLS's per-entry budget after
  // adding the second (60 bytes available).
  problem.states = {State("hot", 40, 10), State("cold", 40, 1)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], MemLevel::kCls);
  EXPECT_NE(result->assignment[1], MemLevel::kCls);
}

TEST(PlacementTest, RespectsBusConstraint) {
  PlacementProblem problem;
  problem.table_width = {4, 4, 2, 1};
  problem.key_bytes = 13;
  // Width 4 with a 13-byte key leaves 3 state bytes per CLS/CTM entry.
  problem.states = {State("a", 4, 5)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  // 4 bytes cannot fit CLS/CTM (3-byte budgets); IMEM width 2 -> 32-13=19.
  EXPECT_EQ(result->assignment[0], MemLevel::kImem);
}

TEST(PlacementTest, OverflowLandsInEmem) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  problem.key_bytes = 13;
  // 51-byte budget per level (bus), but this state is far larger: only EMEM
  // (multi-beat) accepts it.
  problem.states = {State("huge", 500, 2)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], MemLevel::kEmem);
}

TEST(PlacementTest, CapacityConstraintHonored) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  problem.key_bytes = 0;
  problem.groups_per_granularity = 1 << 20;  // A million groups.
  // CLS total = 320 KB -> budget < 1 byte per group; even a 4-byte state
  // must skip CLS/CTM.
  problem.states = {State("s", 4, 1)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assignment[0], MemLevel::kCls);
  EXPECT_NE(result->assignment[0], MemLevel::kCtm);
}

TEST(PlacementTest, ObjectiveIsOptimalOnSmallInstance) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  problem.key_bytes = 0;
  // Budgets: each non-EMEM level holds 64 state bytes.
  problem.states = {State("a", 40, 9), State("b", 40, 8), State("c", 40, 7),
                    State("d", 40, 1)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->optimal);
  // Optimal: a->CLS(30), b->CTM(60), c->IMEM(150), d->EMEM(250).
  const auto& arch = problem.arch;
  const uint64_t expected = 9u * arch.memory(MemLevel::kCls).latency_cycles +
                            8u * arch.memory(MemLevel::kCtm).latency_cycles +
                            7u * arch.memory(MemLevel::kImem).latency_cycles +
                            1u * arch.memory(MemLevel::kEmem).latency_cycles;
  EXPECT_EQ(result->objective, expected);
}

TEST(PlacementTest, LatencyPerPacketCountsOccupiedLevels) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  problem.key_bytes = 0;
  problem.states = {State("a", 8, 2), State("b", 8, 2)};
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  const uint64_t latency = result->LatencyPerPacket(problem.arch, problem.states);
  EXPECT_GT(latency, 0u);
  // Both fit in CLS: exactly one CLS access per packet.
  EXPECT_EQ(latency, problem.arch.memory(MemLevel::kCls).latency_cycles);
}

TEST(PlacementTest, MemoryUtilizationFraction) {
  PlacementProblem problem;
  problem.states = {State("a", 16, 1)};
  problem.groups_per_granularity = 4096;
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  const double util = result->MemoryUtilization(problem);
  EXPECT_GT(util, 0.0);
  EXPECT_LT(util, 1.0);
}

TEST(PlacementTest, ManyStatesStillSolvable) {
  PlacementProblem problem;
  problem.table_width = {1, 1, 1, 1};
  for (int i = 0; i < 40; ++i) {
    problem.states.push_back(
        State(std::string("s") + std::to_string(i), 8 + (i % 5) * 4, 1 + i % 7));
  }
  auto result = SolvePlacement(problem);
  ASSERT_TRUE(result.ok());
  // Every state must be placed somewhere.
  for (MemLevel level : result->assignment) {
    EXPECT_GE(static_cast<int>(level), 0);
    EXPECT_LT(static_cast<int>(level), kNumMemLevels);
  }
}

}  // namespace
}  // namespace superfe
