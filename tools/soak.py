#!/usr/bin/env python3
"""Daemon soak gate (docs/ROBUSTNESS.md, "Daemon mode").

Runs `superfe_run --daemon` on an endlessly looped trace under a fault plan
and asserts the continuous-operation contract:

  * every epoch boundary reconciles exactly:
      cells_offered == cells_processed + cells_shed
                       + cells_lost_failover + cells_dropped_overflow
    (re-derived from the raw epochs.jsonl counters, not just the daemon's
    own `reconciled` verdict)
  * /healthz walks ok -> degraded/stalled -> ok as the fault plan bites and
    failover settles (asserted from /status's recorded transitions, so a
    short 503 window cannot be missed between polls)
  * MGPV occupancy stays bounded across epochs (no monotone growth)
  * SIGTERM mid-ingest drains cleanly: in-flight work is flushed, the final
    epoch reconciles, and the process exits with the documented drain code

Exit 0 if the soak passes, 1 with a failure report otherwise. Stdlib only.

Usage:
  tools/soak.py --binary build/tools/superfe_run [--seconds 60]
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

EXIT_DRAINED = 6  # superfe_run's "clean signal drain" exit code.
PORT_RE = re.compile(r"telemetry: listening on 127\.0\.0\.1:(\d+)")

RECONCILE_PARTS = (
    "cells_processed",
    "cells_shed",
    "cells_lost_failover",
    "cells_dropped_overflow",
)


def http_get(port, path, timeout=2.0):
    """Body of GET on the daemon's telemetry port, or None on failure.

    /healthz answers 503 while degraded — that is a valid, readable body,
    not a failure.
    """
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as e:
        return e.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/tools/superfe_run",
                        help="path to the superfe_run binary")
    parser.add_argument("--policy", default="examples/policies/basic_stats.sfe")
    parser.add_argument("--fault-plan", default="examples/faults/chaos_smoke.plan")
    parser.add_argument("--seconds", type=float, default=60.0,
                        help="soak duration before SIGTERM")
    parser.add_argument("--epoch-ms", type=int, default=2000,
                        help="wall-clock epoch rotation period")
    parser.add_argument("--packets", type=int, default=60000,
                        help="generated trace size (looped endlessly)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epoch-dir", default=None,
                        help="keep epoch exports here (default: a temp dir)")
    args = parser.parse_args()

    failures = []

    def check(ok, what):
        print(("  ok  " if ok else "  FAIL") + f"  {what}")
        if not ok:
            failures.append(what)
        return ok

    epoch_dir = args.epoch_dir or tempfile.mkdtemp(prefix="superfe_soak_")
    pathlib.Path(epoch_dir).mkdir(parents=True, exist_ok=True)

    cmd = [
        args.binary, args.policy,
        "--daemon", "--loop", "0",
        "--profile", "enterprise", "--packets", str(args.packets),
        "--switch-shards", str(args.shards), "--workers", str(args.workers),
        "--epoch-packets", "0", "--epoch-ms", str(args.epoch_ms),
        "--epoch-dir", epoch_dir,
        "--fault-plan", args.fault_plan,
        "--telemetry-port", "0",
        "--telemetry-linger-ms", "0",
    ]
    print("soak:", " ".join(cmd))
    print("soak: epoch exports in", epoch_dir)
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE, text=True)

    # Drain stderr on a thread (the daemon logs per-epoch lines; a full pipe
    # would wedge it) and fish the telemetry port out of the banner.
    stderr_lines = []
    port_found = threading.Event()
    port_box = {}

    def pump_stderr():
        for line in proc.stderr:
            stderr_lines.append(line)
            m = PORT_RE.search(line)
            if m and not port_found.is_set():
                port_box["port"] = int(m.group(1))
                port_found.set()

    pump = threading.Thread(target=pump_stderr, daemon=True)
    pump.start()

    if not port_found.wait(timeout=15.0) or proc.poll() is not None:
        proc.kill()
        proc.wait()
        sys.stderr.write("".join(stderr_lines))
        print("soak: FAIL — daemon never announced its telemetry port")
        return 1
    port = port_box["port"]
    print(f"soak: telemetry on port {port}, running {args.seconds:.0f}s")

    # Poll /healthz through the soak. The authoritative trajectory check
    # reads /status's transition log afterwards; live polling is still
    # worthwhile as a liveness probe (a wedged daemon stops answering).
    health_seen = set()
    deadline = time.monotonic() + args.seconds
    alive = True
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            alive = False
            break
        body = http_get(port, "/healthz")
        if body is not None:
            health_seen.add(body.strip())
        time.sleep(0.25)

    if not check(alive, "daemon stayed up for the full soak"):
        proc.kill()
        proc.wait()
        sys.stderr.write("".join(stderr_lines))
        return 1

    status_raw = http_get(port, "/status", timeout=5.0)
    status = None
    if status_raw:
        try:
            status = json.loads(status_raw)
        except json.JSONDecodeError:
            pass
    check(status is not None, "/status answered with parseable JSON")

    print(f"soak: sending SIGTERM to pid {proc.pid}")
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        rc = None
    pump.join(timeout=5.0)

    check(rc == EXIT_DRAINED,
          f"SIGTERM drain exit code == {EXIT_DRAINED} (got {rc})")

    # ---- Per-epoch reconciliation, re-derived from raw counters ----
    jsonl_path = os.path.join(epoch_dir, "epochs.jsonl")
    epochs = []
    try:
        with open(jsonl_path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if line:
                    epochs.append((line_no, json.loads(line)))
    except (OSError, json.JSONDecodeError) as e:
        check(False, f"epochs.jsonl readable and well-formed ({e})")
        epochs = []

    min_epochs = max(3, int(args.seconds * 1000 / args.epoch_ms / 2))
    check(len(epochs) >= min_epochs,
          f"enough epoch boundaries observed ({len(epochs)} >= {min_epochs})")

    bad = 0
    fault_epochs = 0
    for line_no, e in epochs:
        total = sum(e[k] for k in RECONCILE_PARTS)
        if e["cells_offered"] != total or not e["reconciled"]:
            bad += 1
            print(f"  FAIL  epoch {e.get('epoch')} (line {line_no}): "
                  f"offered={e['cells_offered']} != "
                  f"{' + '.join(str(e[k]) for k in RECONCILE_PARTS)}")
        if e.get("fault_active"):
            fault_epochs += 1
    check(bad == 0, f"every epoch boundary reconciled ({len(epochs)} epochs)")
    check(fault_epochs > 0, "the fault plan actually bit in some epoch")
    check(bool(epochs) and epochs[-1][1].get("final") is True,
          "final drain epoch present and flushed")

    occupancies = [e["mgpv_occupancy"] for _, e in epochs]
    check(bool(occupancies) and max(occupancies) < 0.99,
          f"MGPV occupancy bounded (max {max(occupancies or [0]):.3f})")

    # Per-epoch CSV exports exist and are non-trivial.
    csvs = sorted(pathlib.Path(epoch_dir).glob("epoch_*.csv"))
    check(len(csvs) == len(epochs),
          f"one CSV export per epoch ({len(csvs)} files, {len(epochs)} epochs)")
    check(all(p.stat().st_size > 0 for p in csvs), "epoch CSVs non-empty")

    # ---- Health trajectory: ok -> degraded/stalled -> ok ----
    transitions = (status or {}).get("health", {}).get("transitions", [])
    trajectory = ["ok"] + [t.get("to") for t in transitions]
    went_unhealthy = any(s in ("degraded", "stalled") for s in trajectory)
    recovered = went_unhealthy and trajectory[-1] == "ok"
    check(went_unhealthy,
          f"health marked degraded/stalled under faults (trajectory {trajectory})")
    check(recovered, f"health recovered to ok after failover (trajectory {trajectory})")
    check("ok" in health_seen, f"/healthz polled ok at least once (saw {health_seen})")

    if failures:
        print(f"soak: FAIL — {len(failures)} check(s) failed")
        for f in failures:
            print("   -", f)
        return 1
    print(f"soak: PASS — {len(epochs)} epochs, all reconciled, "
          f"trajectory {trajectory}, clean drain (exit {EXIT_DRAINED})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
