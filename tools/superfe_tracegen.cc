// superfe_tracegen: generate the synthetic workload/attack traces used by
// the evaluation and write them as pcap files for use with external tools.
//
//   superfe_tracegen --profile mawi|enterprise|campus [--packets N] [--seed S]
//                    [--attack os_scan|ssdp_flood|syn_dos|mirai]
//                    [--attack-packets N] --out FILE.pcap [--labels FILE.csv]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "net/attack_gen.h"
#include "net/pcap.h"
#include "net/trace_gen.h"

using namespace superfe;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: superfe_tracegen --profile NAME [--packets N] [--seed S]\n"
               "                        [--attack NAME] [--attack-packets N]\n"
               "                        --out FILE.pcap [--labels FILE.csv]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name = "enterprise";
  std::string attack_name;
  std::string out_path;
  std::string labels_path;
  size_t packets = 100000;
  size_t attack_packets = 20000;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_name = argv[++i];
    } else if (std::strcmp(argv[i], "--attack") == 0 && i + 1 < argc) {
      attack_name = argv[++i];
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--attack-packets") == 0 && i + 1 < argc) {
      attack_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--labels") == 0 && i + 1 < argc) {
      labels_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (out_path.empty()) {
    return Usage();
  }

  TraceProfile profile = EnterpriseProfile();
  if (profile_name == "mawi") {
    profile = MawiIxpProfile();
  } else if (profile_name == "campus") {
    profile = CampusProfile();
  } else if (profile_name != "enterprise") {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 1;
  }

  Trace trace;
  std::vector<uint8_t> labels;
  if (attack_name.empty()) {
    trace = GenerateTrace(profile, packets, seed);
  } else {
    AttackConfig config;
    if (attack_name == "os_scan") {
      config.type = AttackType::kOsScan;
    } else if (attack_name == "ssdp_flood") {
      config.type = AttackType::kSsdpFlood;
    } else if (attack_name == "syn_dos") {
      config.type = AttackType::kSynDos;
    } else if (attack_name == "mirai") {
      config.type = AttackType::kMiraiScan;
    } else {
      std::fprintf(stderr, "unknown attack '%s'\n", attack_name.c_str());
      return 1;
    }
    config.attack_packets = attack_packets;
    LabeledTrace labeled = GenerateAttackTrace(config, profile, packets, seed);
    trace = std::move(labeled.trace);
    labels = std::move(labeled.labels);
  }

  const Status status = WritePcap(out_path, trace);
  if (!status.ok()) {
    std::fprintf(stderr, "pcap error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!labels_path.empty() && !labels.empty()) {
    std::ofstream label_file(labels_path);
    label_file << "packet_index,label\n";
    for (size_t i = 0; i < labels.size(); ++i) {
      label_file << i << "," << static_cast<int>(labels[i]) << "\n";
    }
  }

  const TraceStats stats = trace.ComputeStats();
  std::printf("wrote %s: %s\n", out_path.c_str(), stats.ToString().c_str());
  return 0;
}
