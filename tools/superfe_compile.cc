// superfe_compile: compile a SuperFE policy file, report the partition and
// resource estimates, and optionally emit the generated P4-16 / Micro-C
// reference sources (the paper's policy-enforcement engine, §7).
//
//   superfe_compile POLICY.sfe [--p4 OUT.p4] [--microc OUT.c] [--verbose]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "nicsim/microc_gen.h"
#include "nicsim/placement.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"
#include "switchsim/p4gen.h"
#include "switchsim/resources.h"

using namespace superfe;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: superfe_compile POLICY.sfe [--p4 OUT.p4] [--microc OUT.c] [--verbose]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string policy_path;
  std::string p4_path;
  std::string microc_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--p4") == 0 && i + 1 < argc) {
      p4_path = argv[++i];
    } else if (std::strcmp(argv[i], "--microc") == 0 && i + 1 < argc) {
      microc_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (policy_path.empty()) {
      policy_path = argv[i];
    } else {
      return Usage();
    }
  }

  std::ifstream in(policy_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", policy_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto policy = ParsePolicy(policy_path, buffer.str());
  if (!policy.ok()) {
    std::fprintf(stderr, "parse error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  auto compiled = Compile(*policy);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }

  const SwitchProgram& sw = compiled->switch_program;
  const NicProgram& nic = compiled->nic_program;
  std::printf("policy:            %s (%d LoC)\n", policy->name.c_str(), policy->LinesOfCode());
  std::printf("granularity chain:");
  for (Granularity g : sw.chain) {
    std::printf(" %s", GranularityName(g));
  }
  std::printf("\nfilter:            %s\n", sw.filter.ToString().c_str());
  std::printf("metadata/packet:   %u bytes\n", sw.MetadataBytesPerPacket());
  std::printf("feature dimension: %u\n", nic.FeatureDimension());
  std::printf("NIC state/group:   %u bytes across %zu items\n", nic.StateBytesPerGroup(),
              nic.states.size());
  std::printf("per-packet cost:   %u ALU ops, %u divider uses, %u state words\n",
              nic.AluOpsPerPacket(), nic.DivisionsPerPacket(), nic.MemWordsPerPacket());

  const MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
  const SwitchResourceUsage usage = EstimateSwitchResources(*compiled, config);
  const TofinoCapacity capacity;
  std::printf("switch resources:  tables %.1f%%, sALUs %.1f%%, SRAM %.1f%%\n",
              usage.TablesFraction(capacity) * 100.0, usage.SalusFraction(capacity) * 100.0,
              usage.SramFraction(capacity) * 100.0);

  PlacementProblem problem;
  problem.states = nic.states;
  problem.key_bytes = sw.FgKeyBytes();
  auto placement = SolvePlacement(problem);
  if (placement.ok()) {
    std::printf("NIC placement (%s):\n", placement->optimal ? "ILP optimal" : "greedy");
    if (verbose) {
      AsciiTable table({"state", "bytes", "accesses/pkt", "memory"});
      for (size_t i = 0; i < problem.states.size(); ++i) {
        table.AddRow({problem.states[i].name, std::to_string(problem.states[i].bytes),
                      std::to_string(problem.states[i].accesses_per_packet),
                      MemLevelName(placement->assignment[i])});
      }
      table.Print();
    } else {
      for (int m = 0; m < kNumMemLevels; ++m) {
        if (placement->level_bytes[m] > 0) {
          std::printf("  %-5s %llu bytes/group\n", MemLevelName(static_cast<MemLevel>(m)),
                      (unsigned long long)placement->level_bytes[m]);
        }
      }
    }
  }

  if (!p4_path.empty() && !WriteFile(p4_path, GenerateP4(*compiled, config))) {
    return 1;
  }
  if (!microc_path.empty() && placement.ok() &&
      !WriteFile(microc_path, GenerateMicroC(*compiled, *placement))) {
    return 1;
  }
  if (!p4_path.empty()) {
    std::printf("wrote P4-16 program:  %s\n", p4_path.c_str());
  }
  if (!microc_path.empty()) {
    std::printf("wrote Micro-C program: %s\n", microc_path.c_str());
  }
  return 0;
}
