#!/usr/bin/env python3
"""Prometheus text-exposition-format lint for SuperFE exports.

The regression gate for WriteMetricsProm's conformance (docs/OBSERVABILITY.md,
"Live telemetry"): CI runs it over the --metrics-prom file and a live
/metrics scrape. Checks, per the text format spec:

  * every line is a comment, blank, or a well-formed sample
  * sample names are valid metric identifiers; label syntax parses and label
    values only use the legal escapes (\\\\, \\", \\n)
  * `# TYPE` appears at most once per family, before that family's samples,
    with a known type; `# HELP` at most once, with legal escapes
  * every sample belongs to a HELP/TYPE'd family (after stripping histogram
    _bucket/_sum/_count suffixes), and each family's samples are contiguous
  * sample values parse (decimal, scientific, +Inf/-Inf/NaN)
  * histogram buckets are cumulative, end in an le="+Inf" bucket, and that
    bucket equals the family's _count for the same label set

Usage: prom_lint.py FILE [FILE...]   (exit 1 on any violation)
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)(?: (-?\d+))?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
VALUE_RE = re.compile(r"^(?:[+-]?Inf|NaN|-?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HELP_ESCAPE_RE = re.compile(r"\\(?![\\n])")  # Backslash not starting \\ or \n.


def family_of(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_labels(raw: str, errors, where: str):
    """Returns {label: value} or None; validates full-string label syntax."""
    if raw is None or raw == "":
        return {}
    labels = {}
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            errors.append(f"{where}: bad label syntax at ...{raw[pos:pos+40]!r}")
            return None
        labels[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"{where}: expected ',' between labels in {raw!r}")
                return None
            pos += 1
    return labels


def lint(path: str) -> list:
    errors = []
    helps = {}
    types = {}
    seen_sample_families = []  # In first-seen order, for contiguity.
    # (family, frozen labels minus 'le') -> [(le, cumulative_value)]
    buckets = {}
    counts = {}

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            where = f"{path}:{lineno}"
            line = line.rstrip("\n")
            if line == "":
                continue
            if line.startswith("#"):
                m = re.match(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$", line)
                if m is None:
                    continue  # Arbitrary comments are legal.
                kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
                if kind == "HELP":
                    if name in helps:
                        errors.append(f"{where}: duplicate HELP for {name}")
                    helps[name] = rest
                    if HELP_ESCAPE_RE.search(rest):
                        errors.append(
                            f"{where}: HELP for {name} has an unescaped backslash"
                        )
                else:
                    if name in types:
                        errors.append(f"{where}: duplicate TYPE for {name}")
                    if rest not in TYPES:
                        errors.append(f"{where}: unknown TYPE '{rest}' for {name}")
                    if any(family_of(s) == name for s in seen_sample_families):
                        errors.append(f"{where}: TYPE for {name} after its samples")
                    types[name] = rest
                continue

            m = SAMPLE_RE.match(line)
            if m is None:
                errors.append(f"{where}: unparseable sample line {line!r}")
                continue
            name, raw_labels, value = m.group(1), m.group(2), m.group(3)
            labels = parse_labels(raw_labels, errors, where)
            if labels is None:
                continue
            if not VALUE_RE.match(value):
                errors.append(f"{where}: bad sample value {value!r} for {name}")
                continue
            fam = family_of(name) if types.get(family_of(name)) == "histogram" else name
            if fam not in types:
                errors.append(f"{where}: sample {name} has no # TYPE")
            # Contiguity: a family's block must not be interleaved with others.
            if fam in seen_sample_families and seen_sample_families[-1] != fam:
                errors.append(f"{where}: samples for {fam} are not contiguous")
            if fam not in seen_sample_families or seen_sample_families[-1] != fam:
                seen_sample_families.append(fam)

            if types.get(fam) == "histogram":
                key = (fam, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        errors.append(f"{where}: histogram bucket without le label")
                    else:
                        buckets.setdefault(key, []).append((labels["le"], float(value)))
                elif name.endswith("_count"):
                    counts[key] = float(value)

    for key, series in buckets.items():
        fam = key[0]
        values = [v for _, v in series]
        if values != sorted(values):
            errors.append(f"{path}: {fam}{dict(key[1])}: buckets not cumulative")
        if not series or series[-1][0] != "+Inf":
            errors.append(f"{path}: {fam}{dict(key[1])}: last bucket is not le=\"+Inf\"")
        elif key in counts and series[-1][1] != counts[key]:
            errors.append(
                f"{path}: {fam}{dict(key[1])}: +Inf bucket {series[-1][1]} != "
                f"_count {counts[key]}"
            )
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors = lint(path)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
