// superfe_run: run a SuperFE policy over traffic (a pcap file or a synthetic
// profile) through the simulated switch+NIC pipeline and write the feature
// vectors as CSV.
//
//   superfe_run POLICY.sfe [--pcap FILE | --profile mawi|enterprise|campus]
//               [--packets N] [--seed S] [--out FEATURES.csv] [--report]
//               [--workers N] [--switch-shards N] [--pin-threads]
//               [--metrics-json FILE] [--metrics-prom FILE]
//               [--trace-out FILE] [--sample-interval-ms N]
//               [--latency-report] [--samples-out FILE]
//               [--obs-batch N] [--profile-cycles]
//               [--telemetry-port P] [--telemetry-linger-ms N]
//               [--fault-plan FILE] [--flush-timeout-ms N] [--watchdog-ms N]
//               [--daemon] [--loop N] [--listen tcp:P|udp:P]
//               [--chunk-packets N] [--epoch-packets N] [--epoch-ms N]
//               [--epoch-dir DIR] [--max-seconds N] [--max-epochs N]
//               [--shed-after N] [--drain-timeout-ms N]
//
// Exit codes:
//   0  success
//   1  export/output write failure
//   2  usage error
//   3  invalid configuration (policy parse/compile error, bad fault plan,
//      unknown profile, bad --listen spec)
//   4  unreadable trace (pcap open/decode failure)
//   5  degraded completion (a fault plan ran and the pipeline shed/lost/
//      abandoned work or missed a flush deadline — outputs are still the
//      exact reconciled remainder; in daemon mode also an epoch that failed
//      reconciliation or a drain that missed its deadline)
//   6  daemon clean drain on signal (SIGTERM/SIGINT arrived, ingest stopped,
//      every epoch reconciled, and the final flush met its deadline — the
//      documented graceful-shutdown success code)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "core/runtime.h"
#include "net/ingest.h"
#include "net/pcap.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

using namespace superfe;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: superfe_run POLICY.sfe [--pcap FILE | --profile NAME]\n"
               "                   [--packets N] [--seed S] [--out FILE.csv] [--report]\n"
               "                   [--workers N]   (N>0: parallel NIC cluster, N members)\n"
               "                   [--switch-shards N]  (N>1: sharded FE-Switch + parallel\n"
               "                                         replay, one pipe per CG-hash shard)\n"
               "                   [--pin-threads]      pin shard/worker threads to cores\n"
               "                                        (best-effort; no-op where unsupported)\n"
               "                   [--metrics-json FILE]  metrics + time series as JSON\n"
               "                   [--metrics-prom FILE]  Prometheus text exposition\n"
               "                   [--trace-out FILE]     Chrome trace JSON (Perfetto)\n"
               "                   [--sample-interval-ms N]  snapshot period (default 2)\n"
               "                   [--latency-report]     per-stage latency breakdown\n"
               "                   [--samples-out FILE]   sampler time series as JSON\n"
               "                   [--obs-batch N]        hot-tier flush cadence in packets\n"
               "                                          (default 4096; 1 = per-packet)\n"
               "                   [--profile-cycles]     measured per-stage cycle profile\n"
               "                                          (superfe_cycles_total{stage=...})\n"
               "                   [--telemetry-port P]   live telemetry HTTP server on\n"
               "                                          127.0.0.1:P (/metrics /healthz\n"
               "                                          /status; 0 = ephemeral port)\n"
               "                   [--telemetry-linger-ms N]  keep serving N ms after the\n"
               "                                          run + exports finish\n"
               "                   [--fault-plan FILE]    deterministic fault plan\n"
               "                                          (docs/ROBUSTNESS.md format)\n"
               "                   [--flush-timeout-ms N] cluster flush/join deadline\n"
               "                   [--watchdog-ms N]      worker stall watchdog timeout\n"
               "                   [--no-batch-kernels]   per-cell scalar execution (skip\n"
               "                                          the SoA batch feature kernels)\n"
               "                   [--compensated-batch]  Neumaier-compensated batch sums\n"
               "                                          for double-valued reducers\n"
               "                   [--daemon]             continuous operation: streaming\n"
               "                                          ingest + rolling MGPV epochs +\n"
               "                                          SIGTERM/SIGINT graceful drain\n"
               "                   [--loop N]             replay the trace N times (0 with\n"
               "                                          --daemon = until stopped)\n"
               "                   [--listen tcp:P|udp:P] daemon ingest from a loopback\n"
               "                                          socket instead of the trace\n"
               "                                          (0 = ephemeral port)\n"
               "                   [--chunk-packets N]    ingest chunk size (default 8192)\n"
               "                   [--epoch-packets N]    rotate an epoch every N replayed\n"
               "                                          packets (default 262144; 0 = off)\n"
               "                   [--epoch-ms N]         also rotate every N wall ms\n"
               "                   [--epoch-dir DIR]      per-epoch feature CSVs\n"
               "                                          (epoch_NNNNN.csv) + epochs.jsonl\n"
               "                   [--max-seconds N]      stop ingesting after N seconds\n"
               "                   [--max-epochs N]       stop after N rotated epochs\n"
               "                   [--shed-after N]       shed ingest chunks whole once the\n"
               "                                          replay backlog reaches N chunks\n"
               "                                          (0 = lossless backpressure)\n"
               "                   [--drain-timeout-ms N] epoch drain-barrier deadline\n");
  return 2;
}

// Exit codes (see file header).
constexpr int kExitExportFailure = 1;
constexpr int kExitInvalidConfig = 3;
constexpr int kExitUnreadableTrace = 4;
constexpr int kExitDegraded = 5;
constexpr int kExitDrained = 6;

// Raised by the SIGTERM/SIGINT handler (daemon mode); the daemon loop polls
// it between chunks and starts the graceful drain.
std::atomic<int> g_stop{0};

void StopHandler(int sig) { g_stop.store(sig, std::memory_order_relaxed); }

void WriteCsvHeader(std::ostream& out, const NicProgram& program) {
  out << "group,timestamp_ns";
  for (const auto& slot : program.layout) {
    if (slot.Width() == 1) {
      out << "," << slot.Name();
    } else {
      for (uint32_t i = 0; i < slot.Width(); ++i) {
        out << "," << slot.Name() << "[" << i << "]";
      }
    }
  }
  out << "\n";
}

void WriteCsvRow(std::ostream& out, const FeatureVector& vector) {
  out << vector.group.ToString() << "," << vector.timestamp_ns;
  for (double v : vector.values) {
    out << "," << v;
  }
  out << "\n";
}

class CsvSink : public FeatureSink {
 public:
  CsvSink(std::ostream& out, const NicProgram& program) : out_(out) {
    WriteCsvHeader(out_, program);
  }

  void OnFeatureVector(FeatureVector&& vector) override {
    WriteCsvRow(out_, vector);
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  std::ostream& out_;
  uint64_t count_ = 0;
};

// Daemon-mode sink for --epoch-dir: one CSV file per rolling epoch, swapped
// at the (quiescent) epoch boundary by the on_epoch callback. Vectors that
// arrive between boundaries all land in the currently open file.
class RotatingCsvSink : public FeatureSink {
 public:
  explicit RotatingCsvSink(const NicProgram& program) : program_(program) {}

  bool OpenEpochFile(const std::string& path) {
    file_.close();
    file_.clear();
    file_.open(path);
    if (!file_) {
      return false;
    }
    WriteCsvHeader(file_, program_);
    return true;
  }

  void OnFeatureVector(FeatureVector&& vector) override {
    WriteCsvRow(file_, vector);
    ++count_;
  }

  bool ok() const { return file_.good(); }
  uint64_t count() const { return count_; }

 private:
  const NicProgram& program_;
  std::ofstream file_;
  uint64_t count_ = 0;
};

// One epochs.jsonl line per closed epoch (hand-formatted: JsonWriter
// pretty-prints, and the soak harness parses this file line by line): the
// reconciliation ledger asserted at every boundary.
void WriteEpochJsonl(std::ostream& out, const DaemonEpoch& e) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"epoch\":%llu,\"final\":%s,\"packets\":%llu,\"bytes\":%llu,"
      "\"cells_offered\":%llu,\"cells_processed\":%llu,\"cells_shed\":%llu,"
      "\"cells_lost_failover\":%llu,\"cells_dropped_overflow\":%llu,"
      "\"vectors\":%llu,\"ingest_shed_packets\":%llu,\"reconciled\":%s,"
      "\"fault_active\":%s,\"mgpv_occupancy\":%.6g,\"mgpv_epoch\":%llu,"
      "\"wall_ms\":%.3f}",
      (unsigned long long)e.index, e.final_epoch ? "true" : "false",
      (unsigned long long)e.packets, (unsigned long long)e.bytes,
      (unsigned long long)e.cells_offered, (unsigned long long)e.cells_processed,
      (unsigned long long)e.cells_shed, (unsigned long long)e.cells_lost,
      (unsigned long long)e.cells_overflow, (unsigned long long)e.vectors,
      (unsigned long long)e.ingest_shed_packets, e.reconciled ? "true" : "false",
      e.fault_active ? "true" : "false", e.mgpv_occupancy,
      (unsigned long long)e.mgpv_epoch, e.wall_ms);
  out << buf << '\n';
}

// 9.99 ns / 9.99 us / 9.99 ms / 9.99 s, whichever keeps the mantissa small.
std::string FormatDuration(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

void PrintLatencyBreakdown(const RunReport::LatencyBreakdown& b) {
  const auto row = [](const std::string& name, const obs::LatencyStageSummary& s) {
    if (s.count == 0) {
      return;  // Stage never ran (e.g. queue wait in serial mode).
    }
    std::fprintf(stderr, "  %-28s %10llu  %10s %10s %10s %10s %10s\n", name.c_str(),
                 (unsigned long long)s.count, FormatDuration(s.MeanNs()).c_str(),
                 FormatDuration(s.p50_ns).c_str(), FormatDuration(s.p90_ns).c_str(),
                 FormatDuration(s.p99_ns).c_str(), FormatDuration(s.p999_ns).c_str());
  };
  std::fprintf(stderr,
               "latency breakdown (trace-time):\n"
               "  %-28s %10s  %10s %10s %10s %10s %10s\n",
               "stage", "count", "mean", "p50", "p90", "p99", "p99.9");
  row("mgpv_residency", b.mgpv_residency);
  for (int i = 0; i < 5; ++i) {
    row(std::string("  residency[") + EvictReasonName(static_cast<EvictReason>(i)) + "]",
        b.residency_by_cause[i]);
  }
  row("queue_wait", b.queue_wait);
  for (size_t i = 0; i < b.queue_wait_by_worker.size(); ++i) {
    row("  queue_wait[worker " + std::to_string(i) + "]", b.queue_wait_by_worker[i]);
  }
  row("worker_service", b.worker_service);
  row("end_to_end", b.end_to_end);
  std::fprintf(stderr, "service attribution (modeled NIC cycles):\n");
  for (const auto& s : b.service_shares) {
    if (s.cycles == 0) {
      continue;
    }
    std::fprintf(stderr, "  %-28s %12llu cycles  %5.1f%%\n", s.family,
                 (unsigned long long)s.cycles, s.fraction * 100.0);
  }
}

// --profile-cycles: the measured counterpart of the modeled attribution
// above (superfe_cycles_total brackets per stage).
void PrintMeasuredCycles(const RunReport::LatencyBreakdown& b) {
  std::fprintf(stderr, "stage profile (measured cycles):\n");
  for (const auto& s : b.measured_cycle_shares) {
    std::fprintf(stderr, "  %-28s %12llu cycles  %5.1f%%\n", s.family,
                 (unsigned long long)s.cycles, s.fraction * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string policy_path = argv[1];
  std::string pcap_path;
  std::string profile_name = "enterprise";
  std::string out_path;
  size_t packets = 100000;
  uint64_t seed = 1;
  bool report = false;
  uint32_t workers = 0;
  uint32_t switch_shards = 1;
  bool pin_threads = false;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string trace_out_path;
  std::string samples_out_path;
  uint32_t sample_interval_ms = 2;
  bool latency_report = false;
  uint32_t obs_batch = 0;  // 0 = keep the RuntimeConfig default.
  bool profile_cycles = false;
  int32_t telemetry_port = -1;      // -1 = off, 0 = ephemeral.
  uint64_t telemetry_linger_ms = 0;
  std::string fault_plan_path;
  uint64_t flush_timeout_ms = 0;
  uint32_t watchdog_ms = 0;
  bool no_batch_kernels = false;
  bool compensated_batch = false;
  bool daemon_mode = false;
  uint64_t loop = 1;
  std::string listen_spec;
  size_t chunk_packets = 8192;
  uint64_t epoch_packets = 262144;
  uint64_t epoch_ms = 0;
  std::string epoch_dir;
  uint64_t max_seconds = 0;
  uint64_t max_epochs = 0;
  size_t shed_after = 0;
  uint64_t drain_timeout_ms = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pcap") == 0 && i + 1 < argc) {
      pcap_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_name = argv[++i];
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--switch-shards") == 0 && i + 1 < argc) {
      switch_shards = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--pin-threads") == 0) {
      pin_threads = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      metrics_prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-interval-ms") == 0 && i + 1 < argc) {
      sample_interval_ms = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--latency-report") == 0) {
      latency_report = true;
    } else if (std::strcmp(argv[i], "--samples-out") == 0 && i + 1 < argc) {
      samples_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-batch") == 0 && i + 1 < argc) {
      obs_batch = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--profile-cycles") == 0) {
      profile_cycles = true;
    } else if (std::strcmp(argv[i], "--telemetry-port") == 0 && i + 1 < argc) {
      telemetry_port = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--telemetry-linger-ms") == 0 && i + 1 < argc) {
      telemetry_linger_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      fault_plan_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flush-timeout-ms") == 0 && i + 1 < argc) {
      flush_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      watchdog_ms = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-batch-kernels") == 0) {
      no_batch_kernels = true;
    } else if (std::strcmp(argv[i], "--compensated-batch") == 0) {
      compensated_batch = true;
    } else if (std::strcmp(argv[i], "--daemon") == 0) {
      daemon_mode = true;
    } else if (std::strcmp(argv[i], "--loop") == 0 && i + 1 < argc) {
      loop = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--chunk-packets") == 0 && i + 1 < argc) {
      chunk_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--epoch-packets") == 0 && i + 1 < argc) {
      epoch_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--epoch-ms") == 0 && i + 1 < argc) {
      epoch_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--epoch-dir") == 0 && i + 1 < argc) {
      epoch_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-seconds") == 0 && i + 1 < argc) {
      max_seconds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-epochs") == 0 && i + 1 < argc) {
      max_epochs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shed-after") == 0 && i + 1 < argc) {
      shed_after = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0 && i + 1 < argc) {
      drain_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (loop == 0 && !daemon_mode) {
    std::fprintf(stderr, "--loop 0 (run until stopped) requires --daemon\n");
    return Usage();
  }
  if (!listen_spec.empty() && !daemon_mode) {
    std::fprintf(stderr, "--listen requires --daemon\n");
    return Usage();
  }

  std::ifstream in(policy_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", policy_path.c_str());
    return kExitInvalidConfig;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto policy = ParsePolicy(policy_path, buffer.str());
  if (!policy.ok()) {
    std::fprintf(stderr, "parse error: %s\n", policy.status().ToString().c_str());
    return kExitInvalidConfig;
  }

  Trace trace;
  if (!pcap_path.empty()) {
    PcapReadStats pcap_stats;
    auto loaded = ReadPcap(pcap_path, &pcap_stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "pcap error: %s\n", loaded.status().ToString().c_str());
      return kExitUnreadableTrace;
    }
    trace = std::move(loaded).value();
    if (pcap_stats.truncated_records > 0 || pcap_stats.corrupt_records > 0) {
      std::fprintf(stderr,
                   "pcap: tolerated %llu truncated / %llu corrupt records "
                   "(%llu frames decoded)\n",
                   (unsigned long long)pcap_stats.truncated_records,
                   (unsigned long long)pcap_stats.corrupt_records,
                   (unsigned long long)pcap_stats.frames_decoded);
    }
  } else {
    TraceProfile profile = EnterpriseProfile();
    if (profile_name == "mawi") {
      profile = MawiIxpProfile();
    } else if (profile_name == "campus") {
      profile = CampusProfile();
    } else if (profile_name != "enterprise") {
      std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
      return kExitInvalidConfig;
    }
    trace = GenerateTrace(profile, packets, seed);
  }
  if (!daemon_mode && loop > 1) {
    // One-shot looped replay: materialize the exact stream a daemon's
    // LoopedTraceSource produces over `loop` loops — the byte-identity
    // oracle for daemon epoch exports (CI's daemon smoke diffs the two).
    trace = LoopedTraceSource::Materialize(trace, loop);
  }

  RuntimeConfig config;
  config.worker_threads = workers;
  config.switch_shards = switch_shards;
  config.pin_threads = pin_threads;
  if (!metrics_json_path.empty() || !metrics_prom_path.empty() ||
      !samples_out_path.empty() || telemetry_port >= 0) {
    config.obs.metrics = true;
    config.obs.sample_interval_ms = sample_interval_ms;
  }
  config.obs.trace = !trace_out_path.empty();
  config.obs.latency = latency_report;
  config.obs.profile = profile_cycles;
  config.obs.telemetry_port = telemetry_port;
  config.obs.run_label =
      !pcap_path.empty() ? pcap_path : "profile:" + profile_name;
  if (obs_batch > 0) {
    config.obs.batch_packets = obs_batch;
  }
  if (!fault_plan_path.empty()) {
    std::ifstream plan_in(fault_plan_path);
    if (!plan_in) {
      std::fprintf(stderr, "cannot read fault plan %s\n", fault_plan_path.c_str());
      return kExitInvalidConfig;
    }
    std::stringstream plan_buffer;
    plan_buffer << plan_in.rdbuf();
    auto plan = FaultPlan::Parse(plan_buffer.str());
    if (!plan.ok()) {
      std::fprintf(stderr, "fault plan error: %s\n", plan.status().ToString().c_str());
      return kExitInvalidConfig;
    }
    config.fault.plan = std::move(plan).value();
  }
  config.nic.batch_kernels = !no_batch_kernels;
  config.nic.exec.compensated_batch = compensated_batch;
  config.fault.flush_timeout_ms = flush_timeout_ms;
  if (watchdog_ms > 0) {
    // Poll a few times per timeout so a stall is caught promptly.
    config.fault.watchdog_timeout_ms = watchdog_ms;
    config.fault.watchdog_interval_ms = std::max<uint32_t>(watchdog_ms / 4, 1);
  }
  auto runtime = SuperFeRuntime::Create(*policy, config);
  if (!runtime.ok()) {
    std::fprintf(stderr, "compile error: %s\n", runtime.status().ToString().c_str());
    return kExitInvalidConfig;
  }
  if ((*runtime)->telemetry() != nullptr) {
    // Scripts parse this line to find an ephemeral port; keep it stable.
    std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%u (/metrics /healthz /status)\n",
                 (*runtime)->telemetry_port());
    std::fflush(stderr);
  }

  const auto write_export = [&](const std::string& path, auto writer_fn) -> bool {
    if (path.empty()) {
      return true;
    }
    std::ofstream export_file(path);
    if (!export_file || !writer_fn(export_file)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    return true;
  };
  const auto write_obs_exports = [&]() -> bool {
    bool ok = true;
    ok &= write_export(metrics_json_path, [&](std::ostream& os) {
      return (*runtime)->WriteMetricsJson(os);
    });
    ok &= write_export(metrics_prom_path, [&](std::ostream& os) {
      return (*runtime)->WriteMetricsProm(os);
    });
    ok &= write_export(trace_out_path, [&](std::ostream& os) {
      return (*runtime)->WriteTraceJson(os);
    });
    ok &= write_export(samples_out_path, [&](std::ostream& os) {
      return (*runtime)->WriteSamplesJson(os);
    });
    return ok;
  };

  if (daemon_mode) {
    // ---- Continuous-operation mode (docs/ROBUSTNESS.md, "Daemon mode") ----
    std::unique_ptr<PacketSource> source;
    bool socket_ingest = false;
    if (!listen_spec.empty()) {
      SocketSourceOptions sopt;
      const size_t colon = listen_spec.find(':');
      const std::string proto =
          colon == std::string::npos ? listen_spec : listen_spec.substr(0, colon);
      if (proto == "udp") {
        sopt.udp = true;
      } else if (proto != "tcp") {
        std::fprintf(stderr, "bad --listen spec '%s' (want tcp:PORT or udp:PORT)\n",
                     listen_spec.c_str());
        return kExitInvalidConfig;
      }
      if (colon != std::string::npos) {
        sopt.port = static_cast<uint16_t>(
            std::strtoul(listen_spec.c_str() + colon + 1, nullptr, 10));
      }
      auto opened = SocketSource::Open(sopt);
      if (!opened.ok()) {
        std::fprintf(stderr, "listen error: %s\n", opened.status().ToString().c_str());
        return kExitInvalidConfig;
      }
      // Scripts parse this line to find an ephemeral port; keep it stable.
      std::fprintf(stderr, "ingest: listening on 127.0.0.1:%u (%s)\n",
                   (*opened)->port(), sopt.udp ? "udp" : "tcp");
      std::fflush(stderr);
      socket_ingest = true;
      source = std::move(opened).value();
    } else {
      source = std::make_unique<LoopedTraceSource>(&trace, loop);
    }
    std::signal(SIGTERM, StopHandler);
    std::signal(SIGINT, StopHandler);

    std::ofstream file;
    std::ostream* out = &std::cout;
    std::unique_ptr<CsvSink> csv;
    std::unique_ptr<RotatingCsvSink> rotating;
    std::ofstream jsonl;
    bool epoch_files_ok = true;
    FeatureSink* sink = nullptr;
    const auto epoch_path = [&](uint64_t index) {
      char name[32];
      std::snprintf(name, sizeof(name), "epoch_%05llu.csv", (unsigned long long)index);
      return epoch_dir + "/" + name;
    };
    if (!epoch_dir.empty()) {
      rotating = std::make_unique<RotatingCsvSink>((*runtime)->compiled().nic_program);
      if (!rotating->OpenEpochFile(epoch_path(1))) {
        std::fprintf(stderr, "cannot write %s\n", epoch_path(1).c_str());
        return kExitExportFailure;
      }
      jsonl.open(epoch_dir + "/epochs.jsonl");
      if (!jsonl) {
        std::fprintf(stderr, "cannot write %s/epochs.jsonl\n", epoch_dir.c_str());
        return kExitExportFailure;
      }
      sink = rotating.get();
    } else {
      if (!out_path.empty()) {
        file.open(out_path);
        if (!file) {
          std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
          return kExitExportFailure;
        }
        out = &file;
      }
      csv = std::make_unique<CsvSink>(*out, (*runtime)->compiled().nic_program);
      sink = csv.get();
    }

    DaemonConfig dcfg;
    dcfg.chunk_packets = chunk_packets;
    dcfg.epoch_packets = epoch_packets;
    dcfg.epoch_wall_ms = epoch_ms;
    dcfg.max_seconds = max_seconds;
    dcfg.max_epochs = max_epochs;
    dcfg.stop = &g_stop;
    dcfg.drain_timeout_ms = drain_timeout_ms;
    dcfg.shed_backlog_chunks = shed_after;
    // Socket ingest has no packet axis known up front; trace-backed ingest
    // resolves at_packet fault triggers against the first loop, exactly as
    // a one-shot run over the same trace would.
    dcfg.fault_trigger_trace = socket_ingest ? nullptr : &trace;
    dcfg.on_epoch = [&](const DaemonEpoch& e) {
      if (jsonl.is_open()) {
        WriteEpochJsonl(jsonl, e);
        jsonl.flush();  // A soak supervisor tails this between epochs.
      }
      if (rotating != nullptr) {
        epoch_files_ok = epoch_files_ok && rotating->ok();
        if (!e.final_epoch) {
          epoch_files_ok = rotating->OpenEpochFile(epoch_path(e.index + 1)) &&
                           epoch_files_ok;
        }
      }
    };

    const DaemonReport d = (*runtime)->RunDaemon(*source, sink, dcfg);

    bool exports_ok = write_obs_exports() && epoch_files_ok;
    exports_ok = exports_ok && (rotating == nullptr || rotating->ok());
    const uint64_t vectors = rotating != nullptr ? rotating->count() : csv->count();
    std::fprintf(stderr,
                 "daemon: %zu epochs (%s) | ingested %llu packets (shed %llu) | "
                 "replayed %llu | %llu vectors | %.0f ms\n",
                 d.epochs.size(),
                 d.all_epochs_reconciled ? "all reconciled" : "RECONCILIATION FAILED",
                 (unsigned long long)d.packets_ingested,
                 (unsigned long long)d.packets_shed_ingest,
                 (unsigned long long)d.run.offered.packets, (unsigned long long)vectors,
                 d.wall_ms);
    if (d.run.fault.enabled) {
      const FaultStats& fs = d.run.fault.stats;
      std::fprintf(stderr,
                   "daemon fault: offered %llu = processed %llu + shed %llu + lost "
                   "%llu + overflow %llu -> %s\n",
                   (unsigned long long)fs.cells_offered,
                   (unsigned long long)d.run.fault.cells_processed,
                   (unsigned long long)fs.cells_shed,
                   (unsigned long long)fs.cells_lost_to_failover,
                   (unsigned long long)d.run.fault.overflow_cells_dropped,
                   d.run.fault.reconciled ? "reconciled" : "NOT RECONCILED");
    }
    if (d.stopped_by_signal) {
      std::fprintf(stderr, "daemon: signal %d -> %s drain\n", d.signal,
                   d.drained ? "clean" : "FAILED");
    }
    if (telemetry_linger_ms > 0 && (*runtime)->telemetry() != nullptr) {
      std::fprintf(stderr, "telemetry: lingering %llu ms before exit\n",
                   (unsigned long long)telemetry_linger_ms);
      std::fflush(stderr);
    }
    // Explicit drain-then-linger shutdown: the sampler and telemetry server
    // outlive the final epoch flush and stop here, in order, not via the
    // runtime destructor chain.
    (*runtime)->FinishTelemetry(telemetry_linger_ms);
    if (!exports_ok) {
      return kExitExportFailure;
    }
    if (!d.drained || !d.all_epochs_reconciled) {
      return kExitDegraded;
    }
    if (d.stopped_by_signal) {
      // Clean signal-initiated drain: distinct from both success (the run
      // was cut short) and degradation (nothing was lost). Takes precedence
      // over per-epoch fault marks — a chaos soak that drains cleanly and
      // reconciles every epoch exits 6, not 5.
      return kExitDrained;
    }
    return d.run.fault.enabled && d.run.fault.degraded ? kExitDegraded : 0;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return kExitExportFailure;
    }
    out = &file;
  }
  CsvSink sink(*out, (*runtime)->compiled().nic_program);
  const RunReport run = (*runtime)->Run(trace, &sink);

  const bool exports_ok = write_obs_exports();

  if (report || !out_path.empty()) {
    std::fprintf(stderr,
                 "packets %llu | batched %llu | reports %llu | vectors %llu\n"
                 "aggregation: %.1f%% rate, %.1f%% bytes reach the NIC\n"
                 "sustainable %.0f Gbps (bottleneck: %s)\n",
                 (unsigned long long)run.switch_stats.packets_seen,
                 (unsigned long long)run.switch_stats.packets_batched,
                 (unsigned long long)run.mgpv.reports_out,
                 (unsigned long long)sink.count(), run.mgpv.MessageRatio() * 100.0,
                 run.mgpv.ByteRatio() * 100.0, run.sustainable_gbps, run.bottleneck);
    if (switch_shards > 1) {
      std::fprintf(stderr, "switch shards: %u (parallel replay)\n",
                   (*runtime)->config().switch_shards);
    }
  }
  if (run.cluster_cost.enabled && report) {
    std::fprintf(stderr,
                 "cluster cost: %zu members | load imbalance %.3f | DRAM detour rate "
                 "%.4f (single-NIC model %.4f, delta %+.4f)\n",
                 run.cluster_cost.members, run.cluster_cost.load_imbalance,
                 run.cluster_cost.dram_detour_rate, run.cluster_cost.single_nic_detour_rate,
                 run.cluster_cost.dram_detour_delta);
    for (size_t i = 0; i < run.cluster_cost.per_member.size(); ++i) {
      const auto& m = run.cluster_cost.per_member[i];
      std::fprintf(stderr,
                   "  nic %zu: %llu cells (share %.3f, delta %+.3f) | detour rate %.4f "
                   "(delta %+.4f)\n",
                   i, (unsigned long long)m.cells, m.cells_share, m.load_delta,
                   m.dram_detour_rate, m.dram_detour_delta);
    }
  }
  if (run.obs.trace_enabled && report) {
    std::fprintf(stderr, "trace: %llu events recorded, %llu overwritten\n",
                 (unsigned long long)run.obs.trace_events_recorded,
                 (unsigned long long)run.obs.trace_events_dropped);
  }
  if (latency_report && run.latency.enabled) {
    PrintLatencyBreakdown(run.latency);
  }
  if (profile_cycles && !run.latency.measured_cycle_shares.empty()) {
    PrintMeasuredCycles(run.latency);
  }
  if (run.fault.enabled) {
    const FaultStats& fs = run.fault.stats;
    std::fprintf(stderr,
                 "fault: offered %llu cells = processed %llu + shed %llu + lost %llu "
                 "+ overflow %llu -> %s\n"
                 "fault: failed over %llu reports (%llu groups) | crashed members %llu | "
                 "abandoned groups %llu | pool exhaustions %llu | fences %llu\n"
                 "fault: stalls injected %llu | watchdog events %llu | "
                 "flush deadline %s\n",
                 (unsigned long long)fs.cells_offered,
                 (unsigned long long)run.fault.cells_processed,
                 (unsigned long long)fs.cells_shed,
                 (unsigned long long)fs.cells_lost_to_failover,
                 (unsigned long long)run.fault.overflow_cells_dropped,
                 run.fault.reconciled ? "reconciled" : "NOT RECONCILED",
                 (unsigned long long)fs.reports_failed_over,
                 (unsigned long long)fs.groups_failed_over,
                 (unsigned long long)fs.members_crashed,
                 (unsigned long long)fs.groups_abandoned,
                 (unsigned long long)fs.injected_pool_exhaustions,
                 (unsigned long long)fs.failover_fences,
                 (unsigned long long)fs.stalls_injected,
                 (unsigned long long)fs.watchdog_stall_events,
                 run.fault.flush_deadline_exceeded ? "EXCEEDED" : "met");
  }
  if (telemetry_linger_ms > 0 && (*runtime)->telemetry() != nullptr) {
    // Exports are written and the pipeline is quiescent: a scrape taken in
    // this window is byte-identical to the --metrics-prom file (the CI
    // telemetry smoke asserts exactly that).
    std::fprintf(stderr, "telemetry: lingering %llu ms before exit\n",
                 (unsigned long long)telemetry_linger_ms);
    std::fflush(stderr);
  }
  // Explicit drain-then-linger shutdown ordering (sampler stop -> linger ->
  // server stop) instead of relying on the runtime destructor chain.
  (*runtime)->FinishTelemetry(telemetry_linger_ms);
  if (!exports_ok) {
    return kExitExportFailure;
  }
  return run.fault.enabled && run.fault.degraded ? kExitDegraded : 0;
}
