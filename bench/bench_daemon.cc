// Daemon-mode cost: steady-state throughput of the chunked streaming path
// (RunDaemon over a LoopedTraceSource) against the one-shot batch replay of
// the identical packet stream, plus the marginal cost of an epoch rotation
// (the WaitIdle -> drain-barrier -> counter-snapshot -> MGPV-epoch-advance
// fence at every boundary).
//
// Measurement is paired per the repo's bench methodology (see
// bench_obs_overhead.cc): every round times the baseline and every mode back
// to back after one untimed warmup round, and each mode's overhead is the
// median over rounds of its within-round ratio to the baseline, so slow host
// drift cancels. The rotation cost is the within-round *difference* between
// the epoch-rotating daemon row and the rotation-free daemon row, divided by
// the rotation count — differencing two baseline-relative medians would not
// compose the pairing.
//
// Emits BENCH_daemon.json. Acceptance shape: the streaming daemon path should
// stay within a few percent of one-shot replay (same kernels, same shards —
// the chunked feed adds queue handoffs but no extra per-packet work), and a
// rotation should cost roughly a drain-barrier, i.e. well under the work of
// an epoch at the default cadence.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/runtime.h"
#include "json_writer.h"
#include "net/ingest.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max, f_mean, f_std])
  .reduce(ipt, [f_mean, f_max, f_std])
  .collect(flow)
)";

struct Mode {
  const char* name;
  bool daemon = false;
  uint64_t epoch_packets = 0;  // 0 = no rotation (single final epoch).
};

struct RunResult {
  double ms = 0.0;
  uint64_t rotations = 0;  // Rotated (non-final) epoch boundaries.
};

RunResult RunOnce(const Policy& policy, const RuntimeConfig& config,
                  const Trace& trace, const Trace& looped, uint64_t loops,
                  const Mode& mode) {
  auto runtime = std::move(SuperFeRuntime::Create(policy, config)).value();
  CollectingFeatureSink sink;
  RunResult result;
  if (!mode.daemon) {
    const auto start = std::chrono::steady_clock::now();
    runtime->Run(looped, &sink);
    const auto end = std::chrono::steady_clock::now();
    result.ms = std::chrono::duration<double, std::milli>(end - start).count();
    return result;
  }
  LoopedTraceSource source(&trace, loops);
  DaemonConfig daemon;
  daemon.epoch_packets = mode.epoch_packets;
  daemon.fault_trigger_trace = &trace;
  const auto start = std::chrono::steady_clock::now();
  const DaemonReport report = runtime->RunDaemon(source, &sink, daemon);
  const auto end = std::chrono::steady_clock::now();
  result.ms = std::chrono::duration<double, std::milli>(end - start).count();
  result.rotations = report.epochs.empty() ? 0 : report.epochs.size() - 1;
  return result;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

void Run() {
  std::printf("== Daemon mode: streaming steady-state vs one-shot replay ==\n\n");

  auto policy = ParsePolicy("daemon_bench", kPolicy);
  const Trace trace = GenerateTrace(MawiIxpProfile(), 200000, 0xdae);
  const uint64_t loops = 2;
  const Trace looped = LoopedTraceSource::Materialize(trace, loops);
  const uint64_t total_packets = looped.size();
  const int kReps = 7;

  RuntimeConfig config;
  config.switch_shards = 4;
  config.worker_threads = 4;

  const Mode modes[] = {
      {"one-shot replay (baseline)"},
      {"daemon, no rotation", true, 0},
      {"daemon, epoch=100k pkts", true, 100000},
      {"daemon, epoch=25k pkts", true, 25000},
  };
  constexpr size_t kModeCount = sizeof(modes) / sizeof(modes[0]);
  constexpr size_t kNoRotRow = 1;  // "daemon, no rotation"

  for (const Mode& mode : modes) {  // Untimed warmup round.
    RunOnce(*policy, config, trace, looped, loops, mode);
  }
  std::vector<std::vector<double>> round_ms(kModeCount);
  uint64_t rotations[kModeCount] = {0};
  for (int r = 0; r < kReps; ++r) {
    for (size_t m = 0; m < kModeCount; ++m) {
      const RunResult res = RunOnce(*policy, config, trace, looped, loops, modes[m]);
      round_ms[m].push_back(res.ms);
      rotations[m] = res.rotations;
    }
  }

  AsciiTable table({"Mode", "ms (median)", "Mpps", "Overhead", "Rotations"});
  std::ofstream out("BENCH_daemon.json");
  JsonWriter w(out);
  w.BeginObject();
  w.FieldStr("bench", "daemon");
  w.FieldStr("note",
             "paired rounds after one warmup; overhead = median over rounds of "
             "the within-round ratio to one-shot replay; rotation cost = median "
             "within-round (rotating - non-rotating daemon) / rotations");
  w.FieldUint("trace_packets", trace.size());
  w.FieldUint("loops", loops);
  w.FieldUint("total_packets", total_packets);
  w.FieldUint("reps", static_cast<uint64_t>(kReps));
  w.FieldUint("shards", config.switch_shards);
  w.FieldUint("workers", config.worker_threads);
  w.Key("modes");
  w.BeginArray();
  for (size_t m = 0; m < kModeCount; ++m) {
    const double ms = Median(round_ms[m]);
    const double mpps = total_packets / (ms * 1000.0);
    std::vector<double> ratios;
    for (int r = 0; r < kReps; ++r) {
      ratios.push_back(round_ms[m][r] / round_ms[0][r] - 1.0);
    }
    const double overhead_pct = Median(ratios) * 100.0;
    table.AddRow({modes[m].name, AsciiTable::Num(ms, 2), AsciiTable::Num(mpps, 2),
                  AsciiTable::Num(overhead_pct, 2) + "%",
                  std::to_string(rotations[m])});
    w.BeginObject();
    w.FieldStr("mode", modes[m].name);
    w.FieldBool("daemon", modes[m].daemon);
    w.FieldUint("epoch_packets", modes[m].epoch_packets);
    w.FieldUint("rotations", rotations[m]);
    w.FieldDouble("ms", ms);
    w.FieldDouble("mpps", mpps);
    w.FieldDouble("overhead_pct", overhead_pct);
    w.EndObject();
  }
  w.EndArray();

  // Per-rotation fence cost, from the densest-rotation row against the
  // rotation-free daemon row (both streaming, so the subtraction isolates
  // the epoch fence itself: WaitIdle + drain barrier + snapshot + rotate).
  const size_t dense = kModeCount - 1;
  std::vector<double> per_rotation_ms;
  for (int r = 0; r < kReps; ++r) {
    per_rotation_ms.push_back((round_ms[dense][r] - round_ms[kNoRotRow][r]) /
                              static_cast<double>(rotations[dense]));
  }
  const double rotation_ms = Median(per_rotation_ms);
  w.FieldUint("rotation_cost_rotations", rotations[dense]);
  w.FieldDouble("rotation_cost_ms", rotation_ms);
  w.FieldDouble("rotation_cost_pct_of_epoch",
                rotation_ms / (Median(round_ms[kNoRotRow]) /
                               static_cast<double>(rotations[dense] + 1)) *
                    100.0);
  w.EndObject();
  out << "\n";

  table.Print();
  std::printf("\nEpoch rotation fence: %.3f ms/rotation (from the %llu-rotation row)\n",
              rotation_ms, static_cast<unsigned long long>(rotations[dense]));
  std::printf("\nWrote BENCH_daemon.json\n");
  std::printf(
      "\nShape check: the daemon rows run the same sharded kernels as one-shot\n"
      "replay behind a chunked feed, so steady-state overhead should be a few\n"
      "percent; each rotation adds one quiescence fence (WaitIdle + drain\n"
      "barrier + snapshot), so the epoch=25k row should sit above the\n"
      "epoch=100k row by roughly 3x more rotations x the same per-fence cost.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
