// Microbenchmarks of the streaming algorithms, the MGPV cache hot path and
// the policy front end (google-benchmark).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/trace_gen.h"
#include "policy/compile.h"
#include "policy/parser.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/welford.h"
#include "switchsim/mgpv.h"

namespace superfe {
namespace {

// Pre-filled input buffer: deriving the next sample from the previous one
// (x += 1.0) puts a loop-carried dependence on the measured path and times
// the chain, not the kernel.
void BM_WelfordAdd(benchmark::State& state) {
  WelfordStats stats;
  Rng rng(1);
  std::vector<double> xs(4096);
  for (double& x : xs) {
    x = rng.UniformDouble(0, 1500);
  }
  size_t i = 0;
  for (auto _ : state) {
    stats.Add(xs[i]);
    i = (i + 1) & (xs.size() - 1);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_WelfordAdd);

void BM_WelfordAddBatch(benchmark::State& state) {
  WelfordStats stats;
  Rng rng(1);
  std::vector<double> xs(static_cast<size_t>(state.range(0)));
  for (double& x : xs) {
    x = rng.UniformDouble(0, 1500);
  }
  for (auto _ : state) {
    stats.AddBatch(xs.data(), xs.size());
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WelfordAddBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_NicWelfordAdd(benchmark::State& state) {
  NicWelfordStats stats;
  int64_t x = 1000;
  for (auto _ : state) {
    stats.Add(x);
    x = (x * 31 + 7) % 1500;
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_NicWelfordAdd);

void BM_DampedAdd(benchmark::State& state) {
  DampedStats stats(1.0, static_cast<DampedMode>(state.range(0)));
  double t = 0.0;
  for (auto _ : state) {
    stats.Add(700.0, t);
    t += 0.0001;
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_DampedAdd)->Arg(0)->Arg(1)->Arg(2);

void BM_HllAdd(benchmark::State& state) {
  HyperLogLog hll(static_cast<int>(state.range(0)));
  uint64_t v = 0;
  for (auto _ : state) {
    hll.AddU64(++v);
    benchmark::DoNotOptimize(hll);
  }
}
BENCHMARK(BM_HllAdd)->Arg(6)->Arg(10)->Arg(14);

void BM_HllAddBatch(benchmark::State& state) {
  HyperLogLog hll(10);
  Rng rng(1);
  std::vector<uint64_t> vs(static_cast<size_t>(state.range(0)));
  for (uint64_t& v : vs) {
    v = rng.NextU64();
  }
  for (auto _ : state) {
    hll.AddU64Batch(vs.data(), vs.size());
    benchmark::DoNotOptimize(hll);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HllAddBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_HistogramAdd(benchmark::State& state) {
  FixedHistogram hist(100.0, static_cast<int>(state.range(0)));
  double v = 0.0;
  for (auto _ : state) {
    hist.Add(v);
    v += 37.0;
    if (v > 100.0 * state.range(0)) {
      v = 0.0;
    }
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramAdd)->Arg(16)->Arg(100);

void BM_HistogramAddBatch(benchmark::State& state) {
  FixedHistogram hist(100.0, 16);
  Rng rng(1);
  std::vector<double> vs(static_cast<size_t>(state.range(0)));
  for (double& v : vs) {
    v = rng.UniformDouble(0, 1600);
  }
  for (auto _ : state) {
    hist.AddBatch(vs.data(), vs.size());
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramAddBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_MomentsAdd(benchmark::State& state) {
  StreamingMoments moments;
  double x = 0.0;
  for (auto _ : state) {
    moments.Add(x);
    x += 1.7;
    benchmark::DoNotOptimize(moments);
  }
}
BENCHMARK(BM_MomentsAdd);

void BM_MgpvInsert(benchmark::State& state) {
  class NullSink : public MgpvSink {
   public:
    void OnMgpv(const MgpvReport&) override {}
    void OnFgSync(const FgSyncMessage&) override {}
  };
  NullSink sink;
  MgpvConfig config;
  config.multi_granularity = state.range(0) != 0;
  config.cg = config.multi_granularity ? Granularity::kHost : Granularity::kFlow;
  config.fg = Granularity::kFlow;
  MgpvCache cache(config, &sink);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 100000, 2);
  size_t i = 0;
  for (auto _ : state) {
    cache.Insert(trace.packets()[i]);
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MgpvInsert)->Arg(0)->Arg(1);

void BM_PolicyParse(benchmark::State& state) {
  const std::string source = R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_mean, f_var, f_min, f_max])
  .reduce(ipt, [ft_hist{10000, 100}])
  .collect(flow)
)";
  for (auto _ : state) {
    auto policy = ParsePolicy("bench", source);
    benchmark::DoNotOptimize(policy);
  }
}
BENCHMARK(BM_PolicyParse);

void BM_PolicyCompile(benchmark::State& state) {
  auto policy = ParsePolicy("bench", R"(
pktstream
  .groupby(host, channel, socket)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean, f_var])
  .reduce(ipt, [f_mean])
  .collect(pkt)
)");
  for (auto _ : state) {
    auto compiled = Compile(*policy);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_PolicyCompile);

}  // namespace
}  // namespace superfe

BENCHMARK_MAIN();
