// Ablation: MGPV buffer geometry. The prototype uses 4-cell short buffers
// (x16384) and 20-cell long buffers (x4096) (§7); this sweep shows why —
// the aggregation ratio and the long-buffer hit behavior across geometries
// and traces.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "net/trace_gen.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

class NullMgpvSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport&) override {}
  void OnFgSync(const FgSyncMessage&) override {}
};

void Run() {
  std::printf("== Ablation: MGPV buffer geometry (TF policy) ==\n");
  std::printf("(prototype default: short 4 x 16384, long 20 x 4096)\n\n");

  auto app = AppPolicyByName("TF");
  auto compiled = Compile(app->policy);

  struct Geometry {
    uint32_t short_size;
    uint32_t long_size;
    uint32_t long_buffers;
  };
  const Geometry kGeometries[] = {
      {1, 20, 4096}, {2, 20, 4096}, {4, 20, 4096}, {8, 20, 4096},
      {4, 0, 0},     {4, 8, 4096},  {4, 40, 4096}, {4, 20, 512},
  };

  AsciiTable table({"Trace", "Short", "Long", "Rate ratio", "Byte ratio", "Long allocs",
                    "Alloc fails", "Switch SRAM"});
  for (const TraceProfile& profile : PaperProfiles()) {
    const Trace trace = GenerateTrace(profile, 200000, 0xab1);
    for (const Geometry& geometry : kGeometries) {
      MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
      config.short_size = geometry.short_size;
      config.long_size = geometry.long_size == 0 ? 1 : geometry.long_size;
      config.long_buffers = geometry.long_buffers;

      NullMgpvSink sink;
      FeSwitch fe(*compiled, &sink, config);
      for (const auto& pkt : trace.packets()) {
        fe.OnPacket(pkt);
      }
      fe.Flush();
      const MgpvStats& stats = fe.cache().stats();
      char geom_short[16];
      char geom_long[24];
      std::snprintf(geom_short, sizeof(geom_short), "%u", geometry.short_size);
      if (geometry.long_buffers == 0) {
        std::snprintf(geom_long, sizeof(geom_long), "none");
      } else {
        std::snprintf(geom_long, sizeof(geom_long), "%u x %u", geometry.long_size,
                      geometry.long_buffers);
      }
      table.AddRow({profile.name, geom_short, geom_long,
                    AsciiTable::Percent(stats.MessageRatio(), 1),
                    AsciiTable::Percent(stats.ByteRatio(), 1),
                    std::to_string(stats.long_allocs),
                    std::to_string(stats.long_alloc_failures),
                    AsciiTable::Num(config.MemoryFootprintBytes() / 1048576.0, 2) + " MB"});
    }
  }
  table.Print();
  std::printf(
      "\nReading: bigger short buffers improve aggregation but cost SRAM linearly;\n"
      "long buffers absorb heavy-tailed flows (biggest effect on MAWI); too few long\n"
      "buffers show up as allocation failures. The 4/20 default balances all three.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
