// Appendix A (Table 5): the full function library — per-function NIC state
// footprint, modeled per-sample cost, and measured host-side update rate.
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "nicsim/exec.h"
#include "policy/functions.h"

namespace superfe {
namespace {

double MeasureUpdateNs(const ReduceSpec& spec) {
  Reducer reducer(spec, [] { ExecOptions o; o.nic_arithmetic = true; return o; }(), /*directional=*/false);
  Rng rng(1);
  constexpr int kSamples = 200000;
  std::vector<double> values(1024);
  for (auto& v : values) {
    v = rng.UniformDouble(0, 1500);
  }
  const auto start = std::chrono::steady_clock::now();
  double t = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    reducer.Update(values[i & 1023], t, i % 2 == 0 ? Direction::kForward
                                                   : Direction::kBackward);
    t += 0.0001;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() / kSamples;
}

void Run() {
  std::printf("== Table 5 function library: state, modeled NIC cost, measured rate ==\n\n");

  struct Entry {
    const char* label;
    ReduceSpec spec;
  };
  std::vector<Entry> entries = {
      {"f_sum", {ReduceFn::kSum}},
      {"f_sum{decay=1}", {ReduceFn::kSum, 0, 0, 0, 1.0}},
      {"f_mean", {ReduceFn::kMean}},
      {"f_mean{decay=1}", {ReduceFn::kMean, 0, 0, 0, 1.0}},
      {"f_var", {ReduceFn::kVar}},
      {"f_std", {ReduceFn::kStd}},
      {"f_min", {ReduceFn::kMin}},
      {"f_max", {ReduceFn::kMax}},
      {"f_skew", {ReduceFn::kSkew}},
      {"f_kur", {ReduceFn::kKur}},
      {"f_mag{decay=1}", {ReduceFn::kMag, 0, 0, 0, 1.0}},
      {"f_radius{decay=1}", {ReduceFn::kRadius, 0, 0, 0, 1.0}},
      {"f_cov{decay=1}", {ReduceFn::kCov, 0, 0, 0, 1.0}},
      {"f_pcc{decay=1}", {ReduceFn::kPcc, 0, 0, 0, 1.0}},
      {"f_card", {ReduceFn::kCard}},
      {"f_array{1000}", {ReduceFn::kArray, 0, 0, 1000}},
      {"ft_hist{100,16}", {ReduceFn::kHist, 100, 16}},
      {"f_pdf{100,16}", {ReduceFn::kPdf, 100, 16}},
      {"f_cdf{100,16}", {ReduceFn::kCdf, 100, 16}},
      {"ft_percent{0.9}", {ReduceFn::kPercent, 0.9}},
  };

  AsciiTable table({"Function", "State bytes/group", "ALU ops", "Divider", "Mem words",
                    "Measured update"});
  for (const auto& entry : entries) {
    const ReduceCost cost = CostOfReduce(entry.spec);
    table.AddRow({entry.label, std::to_string(cost.state_bytes),
                  std::to_string(cost.alu_ops), std::to_string(cost.divisions),
                  std::to_string(cost.mem_words),
                  AsciiTable::Num(MeasureUpdateNs(entry.spec), 1) + " ns"});
  }
  table.Print();
  std::printf(
      "\nState bytes feed the ILP placement; ALU/divider/memory counts feed the cycle\n"
      "model; the measured column is this host's C++ update rate (simulation speed).\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
