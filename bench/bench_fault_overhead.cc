// Fault-framework overhead: wall-clock for the same end-to-end run with the
// fault subsystem fully off (the default — hook sites pay only a
// null-injector branch), with an armed injector whose plan never fires
// (trigger far past the trace horizon: the full RouteFor/accounting path
// runs on every report), and with the liveness watchdog thread on top.
//
// Emits BENCH_fault_overhead.json. Acceptance: the disabled configuration
// is the shipping default, so "disabled overhead" is definitionally zero
// here; the armed-but-idle path should stay in the low single-digit percent
// range for this workload.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/table.h"
#include "core/runtime.h"
#include "fault/fault_plan.h"
#include "json_writer.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max, f_mean, f_std])
  .reduce(ipt, [f_mean, f_max, f_std])
  .collect(flow)
)";

// A crash trigger far past any realistic trace horizon: the injector is
// armed (every report pays RouteFor + offered accounting) but no fault
// ever fires, so the output stays identical to the baseline.
FaultPlan NeverFiringPlan() {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kMemberCrash;
  crash.target = 0;
  crash.at_ns = UINT64_MAX / 2;
  plan.Add(crash);
  return plan;
}

struct Mode {
  const char* name;
  bool armed;
  uint32_t watchdog_interval_ms;
};

double RunOnce(const Policy& policy, const Trace& trace, const Mode& mode) {
  RuntimeConfig config;
  config.worker_threads = 2;
  if (mode.armed) {
    config.fault.plan = NeverFiringPlan();
    config.fault.watchdog_interval_ms = mode.watchdog_interval_ms;
  }
  auto runtime = std::move(SuperFeRuntime::Create(policy, config)).value();
  CollectingFeatureSink sink;
  const auto start = std::chrono::steady_clock::now();
  runtime->Run(trace, &sink);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double RunTimed(const Policy& policy, const Trace& trace, const Mode& mode, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double ms = RunOnce(policy, trace, mode);
    if (r == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

void Run() {
  std::printf("== Fault-framework overhead: disabled vs armed-idle vs +watchdog ==\n\n");

  auto policy = ParsePolicy("fault_overhead", kPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 200000, 0xfa17);
  const int kReps = 3;

  const Mode modes[] = {
      {"disabled", false, 0},
      {"armed_idle_plan", true, 0},
      {"armed+watchdog", true, 5},
  };

  const double baseline_ms = RunTimed(*policy, trace, modes[0], kReps);

  AsciiTable table({"Mode", "ms (best of 3)", "Overhead"});
  std::ofstream out("BENCH_fault_overhead.json");
  JsonWriter w(out);
  w.BeginObject();
  w.FieldStr("bench", "fault_overhead");
  w.FieldUint("trace_packets", trace.size());
  w.FieldUint("reps", static_cast<uint64_t>(kReps));
  w.FieldDouble("baseline_disabled_ms", baseline_ms);
  w.Key("modes");
  w.BeginArray();
  for (const Mode& mode : modes) {
    const double ms = std::string(mode.name) == "disabled"
                          ? baseline_ms
                          : RunTimed(*policy, trace, mode, kReps);
    const double overhead_pct =
        baseline_ms > 0.0 ? (ms - baseline_ms) / baseline_ms * 100.0 : 0.0;
    table.AddRow({mode.name, AsciiTable::Num(ms, 2),
                  AsciiTable::Num(overhead_pct, 2) + "%"});
    w.BeginObject();
    w.FieldStr("mode", mode.name);
    w.FieldBool("armed", mode.armed);
    w.FieldUint("watchdog_interval_ms", mode.watchdog_interval_ms);
    w.FieldDouble("ms", ms);
    w.FieldDouble("overhead_pct", overhead_pct);
    w.EndObject();
  }
  w.EndArray();
  // The acceptance knob: faults are off by default, so the default pipeline
  // cost IS the baseline. Recorded explicitly so downstream checks don't
  // have to infer it.
  w.FieldDouble("disabled_overhead_pct", 0.0);
  w.FieldDouble("disabled_overhead_target_pct", 2.0);
  w.EndObject();
  out << "\n";

  table.Print();
  std::printf("\nWrote BENCH_fault_overhead.json\n");
  std::printf(
      "\nShape check: 'disabled' is the shipping default (a null-injector\n"
      "branch per hook site); the armed-idle plan pays one RouteFor scan and\n"
      "two relaxed counter adds per report; the watchdog adds a sleeping\n"
      "thread that samples per-worker progress counters.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
