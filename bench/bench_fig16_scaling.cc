// Fig 16: FE-NIC throughput as SoC cores are added (1 -> 120 across two
// NFP-4000s), per application. The NBI distributes packets per-IP so
// scaling is near-linear.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "core/runtime.h"
#include "net/trace_gen.h"
#include "nicsim/nic_cluster.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

class NullSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override {}
};

void Run() {
  std::printf("== Fig 16: scalability with SoC cores (Mpps of feature metadata) ==\n\n");

  const Trace trace = GenerateTrace(MawiIxpProfile(), 200000, 0xf16);
  const char* kApps[] = {"TF", "N-BaIoT", "NPOD", "Kitsune"};
  const uint32_t kCores[] = {1, 2, 4, 8, 16, 30, 60, 90, 120};

  AsciiTable table({"Cores", "TF", "N-BaIoT", "NPOD", "Kitsune"});
  std::vector<std::vector<double>> series(4);
  for (size_t a = 0; a < 4; ++a) {
    auto app = AppPolicyByName(kApps[a]);
    auto runtime = SuperFeRuntime::Create(app->policy, RuntimeConfig{});
    NullSink sink;
    (*runtime)->Run(trace, &sink);
    for (uint32_t cores : kCores) {
      series[a].push_back((*runtime)->nic().perf().ThroughputPps(cores) * 1e-6);
    }
  }
  for (size_t c = 0; c < std::size(kCores); ++c) {
    table.AddRow({std::to_string(kCores[c]), AsciiTable::Num(series[0][c], 2),
                  AsciiTable::Num(series[1][c], 2), AsciiTable::Num(series[2][c], 2),
                  AsciiTable::Num(series[3][c], 2)});
  }
  table.Print();

  // Scaling efficiency at 120 cores.
  std::printf("\nScaling efficiency at 120 cores vs 1 core:\n");
  for (size_t a = 0; a < 4; ++a) {
    std::printf("  %-8s %5.1fx (ideal 120x)\n", kApps[a], series[a].back() / series[a][0]);
  }
  // Scale-out beyond two NICs: the switch load-balances MGPV traffic across
  // a cluster of SmartNICs by CG hash (Section 8.5).
  std::printf("\nScale-out with additional 60-core SmartNICs (Kitsune policy):\n");
  auto kitsune = AppPolicyByName("Kitsune");
  auto compiled = Compile(kitsune->policy);
  AsciiTable cluster_table({"SmartNICs", "Aggregate Mpps", "Load imbalance"});
  for (size_t nic_count : {1u, 2u, 4u, 8u}) {
    NullSink sink;
    auto cluster =
        std::move(NicCluster::Create(*compiled, FeNicConfig{}, nic_count, &sink)).value();
    FeSwitch fe(*compiled, cluster.get());
    for (const auto& pkt : trace.packets()) {
      fe.OnPacket(pkt);
    }
    fe.Flush();
    cluster->Flush();
    cluster_table.AddRow({std::to_string(nic_count),
                          AsciiTable::Num(cluster->ThroughputPps(60) * 1e-6, 2),
                          AsciiTable::Num(cluster->LoadImbalance(), 3) + "x"});
  }
  cluster_table.Print();

  std::printf(
      "\nShape check: near-linear scaling for every app; the website-fingerprinting\n"
      "extractor (TF) is the simplest and achieves the highest throughput; adding\n"
      "SmartNICs scales further with balanced hash routing.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
