// Fig 14: effect of the aging mechanism — aggregation ratio and buffer
// efficiency (fraction of cached entries belonging to recently active
// flows) as a function of the timeout T, per workload trace.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "net/trace_gen.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

class NullMgpvSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport&) override {}
  void OnFgSync(const FgSyncMessage&) override {}
};

void Run() {
  std::printf("== Fig 14: optimization of the aging design (TF policy) ==\n");
  std::printf("(buffer efficiency = active flows among cached entries, 10 ms window)\n\n");

  auto app = AppPolicyByName("TF");
  auto compiled = Compile(app->policy);

  const uint64_t kTimeoutsMs[] = {0, 2, 5, 10, 20, 50, 100, 200};

  AsciiTable table({"Trace", "T (ms)", "Byte ratio", "Aging evictions", "Buffer efficiency",
                    "Occupancy"});
  for (const TraceProfile& profile : PaperProfiles()) {
    const Trace trace = GenerateTrace(profile, 250000, 0xf14);
    for (uint64_t timeout_ms : kTimeoutsMs) {
      MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
      config.aging_timeout_ns = timeout_ms * 1000000ull;
      config.aging_scan_per_packet = 4;

      NullMgpvSink sink;
      FeSwitch fe(*compiled, &sink, config);
      double efficiency_sum = 0.0;
      int samples = 0;
      size_t count = 0;
      for (const auto& pkt : trace.packets()) {
        fe.OnPacket(pkt);
        if (++count % 25000 == 0) {
          efficiency_sum += fe.cache().BufferEfficiency(10000000ull);  // 10 ms.
          ++samples;
        }
      }
      const double occupancy = fe.cache().Occupancy();
      fe.Flush();
      const MgpvStats& stats = fe.cache().stats();
      table.AddRow({profile.name, timeout_ms == 0 ? "off" : std::to_string(timeout_ms),
                    AsciiTable::Percent(stats.ByteRatio(), 1),
                    std::to_string(stats.evictions[static_cast<int>(EvictReason::kAging)]),
                    AsciiTable::Percent(samples > 0 ? efficiency_sum / samples : 1.0, 1),
                    AsciiTable::Percent(occupancy, 1)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: aging raises buffer efficiency (entries track live flows); too\n"
      "small T inflates the eviction ratio, too large T degenerates to no aging; the\n"
      "sweet spot depends on the trace's flow-length distribution.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
