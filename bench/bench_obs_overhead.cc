// Observability overhead: wall-clock for the same end-to-end run with the
// obs subsystem fully off (the default — instrumented sites pay only a
// null-handle branch), with the metrics registry on, with metrics + latency
// histograms (trace-clock publication and per-stage Observe calls), and
// with metrics + tracing + the snapshot sampler on. A batch-size sweep
// compares the batched hot tier (worker-local delta blocks flushed every
// batch_packets) against the legacy per-packet registry cadence (batch=1).
//
// Emits BENCH_obs_overhead.json. Acceptance: the disabled configuration is
// the shipping default, so "disabled overhead" is definitionally zero here;
// the interesting numbers are the enabled-path costs, which should stay in
// the low single-digit percent range for this workload.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/table.h"
#include "core/runtime.h"
#include "json_writer.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max, f_mean, f_std])
  .reduce(ipt, [f_mean, f_max, f_std])
  .collect(flow)
)";

struct Mode {
  const char* name;
  bool metrics;
  bool trace;
  uint32_t sample_interval_ms;
  bool latency = false;
  // Hot-tier flush cadence; 0 keeps the RuntimeConfig default (4096).
  // 1 is the legacy per-packet registry cadence the fast path replaced.
  uint32_t batch_packets = 0;
  bool profile = false;
  // Live telemetry plane: start the embedded HTTP server (ephemeral port);
  // `scrape` additionally runs a background client hitting /metrics at 1 Hz
  // (the first scrape fires immediately, so even sub-second rounds serve at
  // least one) for the docs' "scraping costs ≤1pp" claim.
  bool telemetry = false;
  bool scrape = false;
};

double RunOnce(const Policy& policy, const Trace& trace, const Mode& mode) {
  RuntimeConfig config;
  config.obs.metrics = mode.metrics;
  config.obs.trace = mode.trace;
  config.obs.sample_interval_ms = mode.sample_interval_ms;
  config.obs.latency = mode.latency;
  config.obs.profile = mode.profile;
  if (mode.batch_packets > 0) {
    config.obs.batch_packets = mode.batch_packets;
  }
  if (mode.telemetry) {
    config.obs.telemetry_port = 0;  // Ephemeral.
  }
  auto runtime = std::move(SuperFeRuntime::Create(policy, config)).value();
  CollectingFeatureSink sink;

  // The scraper lives outside the timed region; only the scrapes that land
  // while Run() is hot perturb the measurement — which is the point.
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (mode.scrape) {
    const uint16_t port = runtime->telemetry_port();
    scraper = std::thread([port, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        HttpGet(port, "/metrics");
        for (int i = 0; i < 100 && !stop.load(std::memory_order_relaxed); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  runtime->Run(trace, &sink);
  const auto end = std::chrono::steady_clock::now();
  if (scraper.joinable()) {
    stop.store(true);
    scraper.join();
  }
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void Run() {
  std::printf("== Observability overhead: disabled vs metrics vs metrics+trace ==\n\n");

  auto policy = ParsePolicy("obs_overhead", kPolicy);
  const Trace trace = GenerateTrace(MawiIxpProfile(), 200000, 0x0b5);
  const int kReps = 7;

  const Mode modes[] = {
      {"disabled", false, false, 0},
      {"metrics", true, false, 0},
      // Batch sweep: the default "metrics" row above uses the shipping
      // hot-tier cadence (4096); batch=1 is the legacy per-packet registry
      // path the worker-local delta blocks replaced.
      {"metrics batch=1 (legacy)", true, false, 0, false, 1},
      {"metrics batch=64", true, false, 0, false, 64},
      {"metrics batch=1024", true, false, 0, false, 1024},
      {"metrics+latency", true, false, 0, true},
      {"metrics+latency+profile", true, false, 0, true, 0, true},
      {"metrics+sampler", true, false, 2},
      {"metrics+trace+sampler", true, true, 2},
      // Telemetry plane cost, split: the server idling (listener thread
      // polling accept, sampler + rolling window ticking) vs actively
      // scraped at 1 Hz. The delta between these two rows is the scrape
      // cost proper (scrape_added_pp below).
      {"metrics+telemetry (idle)", true, false, 0, false, 0, false, true},
      {"metrics+telemetry scraped@1Hz", true, false, 0, false, 0, false, true, true},
  };
  constexpr size_t kModeCount = sizeof(modes) / sizeof(modes[0]);

  // Measurement is *paired*: every round times the baseline and every mode
  // back to back, and each mode's overhead is the median over rounds of its
  // within-round ratio to the baseline. An earlier version timed all
  // baseline reps in one up-front block, so slow host drift (frequency
  // scaling, co-tenancy) between that block and the mode runs landed
  // wholesale in the overhead percentages — the recorded JSON once reported
  // ~22-26% "metrics overhead" that was pure drift. Within-round ratios
  // cancel drift that is slow relative to a round; the median discards
  // rounds a co-tenant perturbed. One untimed warmup round first primes
  // caches and the allocator.
  for (const Mode& mode : modes) {
    RunOnce(*policy, trace, mode);
  }
  std::vector<std::vector<double>> round_ms(kModeCount);
  for (int r = 0; r < kReps; ++r) {
    for (size_t m = 0; m < kModeCount; ++m) {
      round_ms[m].push_back(RunOnce(*policy, trace, modes[m]));
    }
  }
  const auto median = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    const size_t n = xs.size();
    return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
  };
  double median_ms[kModeCount];
  double median_overhead_pct[kModeCount];
  for (size_t m = 0; m < kModeCount; ++m) {
    median_ms[m] = median(round_ms[m]);
    std::vector<double> ratios;
    for (int r = 0; r < kReps; ++r) {
      ratios.push_back(round_ms[m][r] / round_ms[0][r] - 1.0);
    }
    median_overhead_pct[m] = median(ratios) * 100.0;
  }
  const double baseline_ms = median_ms[0];

  // Direct serve-cost measurement: time quiescent scrapes back to back.
  // At 1 Hz the serve path occupies per_scrape_ms out of every 1000 ms, so
  // the duty cycle (in percent points) upper-bounds the scraping overhead
  // even on a single-core host where serve work displaces run work 1:1.
  // This is the defensible number for the ≤1pp claim — the wall-clock A/B
  // rows above cannot resolve sub-pp effects on a small co-tenant host.
  double per_scrape_ms = 0.0;
  {
    RuntimeConfig config;
    config.obs.metrics = true;
    config.obs.telemetry_port = 0;
    auto runtime = std::move(SuperFeRuntime::Create(*policy, config)).value();
    CollectingFeatureSink sink;
    runtime->Run(trace, &sink);
    const uint16_t port = runtime->telemetry_port();
    HttpGet(port, "/metrics");  // Warm the connect/serve path.
    constexpr int kScrapes = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kScrapes; ++i) {
      HttpGet(port, "/metrics");
    }
    const auto t1 = std::chrono::steady_clock::now();
    per_scrape_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kScrapes;
  }

  AsciiTable table({"Mode", "ms (median)", "Overhead"});
  std::ofstream out("BENCH_obs_overhead.json");
  JsonWriter w(out);
  w.BeginObject();
  w.FieldStr("bench", "obs_overhead");
  w.FieldStr("note",
             "paired measurement: baseline and modes interleaved per round after a "
             "warmup round, overhead = median over rounds of the within-round "
             "ratio; an earlier single-block baseline let host drift land in "
             "overhead_pct (historical 22-26% readings were that artifact, not a "
             "hot-path regression)");
  w.FieldUint("trace_packets", trace.size());
  w.FieldUint("reps", static_cast<uint64_t>(kReps));
  w.FieldDouble("baseline_disabled_ms", baseline_ms);
  w.Key("modes");
  w.BeginArray();
  for (size_t m = 0; m < kModeCount; ++m) {
    const Mode& mode = modes[m];
    const double ms = median_ms[m];
    const double overhead_pct = median_overhead_pct[m];
    table.AddRow({mode.name, AsciiTable::Num(ms, 2),
                  AsciiTable::Num(overhead_pct, 2) + "%"});
    w.BeginObject();
    w.FieldStr("mode", mode.name);
    w.FieldBool("metrics", mode.metrics);
    w.FieldBool("trace", mode.trace);
    w.FieldUint("sample_interval_ms", mode.sample_interval_ms);
    w.FieldBool("latency", mode.latency);
    w.FieldBool("profile", mode.profile);
    w.FieldUint("batch_packets", mode.batch_packets);
    w.FieldBool("telemetry", mode.telemetry);
    w.FieldBool("scraped_1hz", mode.scrape);
    w.FieldDouble("ms", ms);
    w.FieldDouble("overhead_pct", overhead_pct);
    w.EndObject();
  }
  w.EndArray();
  // The acceptance knob: obs is off by default, so the default pipeline cost
  // IS the baseline. Recorded explicitly so downstream checks don't have to
  // infer it.
  w.FieldDouble("disabled_overhead_pct", 0.0);
  w.FieldDouble("disabled_overhead_target_pct", 2.0);
  // The scrape cost proper: scraped@1Hz vs the idle-telemetry row, as the
  // median of *within-round* ratios between the two (they run back to back
  // each round, so slow host drift cancels — differencing their independent
  // baseline-relative medians does not compose the pairing and is several
  // times noisier on small hosts).
  std::vector<double> scrape_ratios;
  for (int r = 0; r < kReps; ++r) {
    scrape_ratios.push_back(round_ms[kModeCount - 1][r] / round_ms[kModeCount - 2][r] -
                            1.0);
  }
  w.FieldDouble("scrape_added_pp", median(scrape_ratios) * 100.0);
  // Quiescent serve cost per scrape and the implied 1 Hz duty cycle: the
  // noise-free bound for the target (round-trip HTTP GET + full WriteProm).
  w.FieldDouble("scrape_serve_ms", per_scrape_ms);
  w.FieldDouble("scraped_1hz_duty_pct", per_scrape_ms / 1000.0 * 100.0);
  w.FieldDouble("scrape_added_target_pp", 1.0);
  w.EndObject();
  out << "\n";

  table.Print();
  std::printf("\nScrape serve cost: %.3f ms/scrape => %.4f%% duty at 1 Hz\n",
              per_scrape_ms, per_scrape_ms / 1000.0 * 100.0);
  std::printf("\nWrote BENCH_obs_overhead.json\n");
  std::printf(
      "\nShape check: 'disabled' is the shipping default (null-handle branches\n"
      "only, no delta blocks allocated, no cycle reads); metrics accumulates\n"
      "into thread-local plain delta cells and folds into the shared registry\n"
      "once per batch (default 4096 packets), so overhead should fall as the\n"
      "batch grows and 'metrics batch=1 (legacy)' should be the most\n"
      "expensive metrics row; latency adds a clock store per packet plus\n"
      "per-report histogram-cell observes; profile adds one cycle-counter\n"
      "read pair per instrumented stage; tracing adds a ring write per\n"
      "span/instant on top.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
