// Parallel NIC-cluster pipeline: serial vs N-worker wall-clock on one
// recorded MGPV stream, with a hard correctness gate — the parallel feature
// multiset must be identical to the serial reference for the same seed.
//
// Emits BENCH_parallel_cluster.json (machine-readable) next to the usual
// ascii table. Acceptance: >= 1.5x speedup at 4 workers, multiset match.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/table.h"
#include "json_writer.h"
#include "nicsim/mgpv_recorder.h"
#include "nicsim/nic_cluster.h"
#include "net/trace_gen.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

// Feature-heavy flow policy: enough per-cell streaming work that the
// pipeline (not the queues) dominates, as on the real NFP cores.
const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max, f_mean, f_std])
  .reduce(ipt, [f_mean, f_max, f_std])
  .collect(flow)
)";

using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct RunResult {
  double ms = 0.0;
  uint64_t backpressure_waits = 0;
  std::vector<VectorKey> multiset;
};

RunResult RunOnce(const CompiledPolicy& compiled, const MgpvRecorder& stream, size_t members,
                  bool parallel) {
  CollectingFeatureSink sink;
  NicClusterOptions options;
  options.parallel = parallel;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, members, &sink, options)).value();

  const auto start = std::chrono::steady_clock::now();
  stream.DeliverTo(*cluster);
  cluster->Flush();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.ms = std::chrono::duration<double, std::milli>(end - start).count();
  for (size_t i = 0; i < cluster->size(); ++i) {
    result.backpressure_waits += cluster->worker_stats(i).backpressure_waits;
  }
  result.multiset = SortedMultiset(sink.vectors());
  return result;
}

// Best-of-N wall clock; the multiset of the last repetition is kept (they
// are identical across reps by construction).
RunResult RunTimed(const CompiledPolicy& compiled, const MgpvRecorder& stream, size_t members,
                   bool parallel, int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    RunResult run = RunOnce(compiled, stream, members, parallel);
    if (r == 0 || run.ms < best.ms) {
      best.ms = run.ms;
      best.backpressure_waits = run.backpressure_waits;
    }
    best.multiset = std::move(run.multiset);
  }
  return best;
}

void Run() {
  std::printf("== Parallel FE-NIC cluster: serial vs worker-thread wall-clock ==\n\n");

  auto policy = ParsePolicy("parallel_bench", kPolicy);
  auto compiled = Compile(*policy);

  const Trace trace = GenerateTrace(MawiIxpProfile(), 400000, 0xbea7);
  MgpvRecorder stream;
  {
    FeSwitch fe(*compiled, &stream);
    for (const auto& pkt : trace.packets()) {
      fe.OnPacket(pkt);
    }
    fe.Flush();
  }
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Trace: %zu packets -> %zu MGPV messages (%llu cells), host CPUs: %u\n\n",
              trace.size(), stream.messages().size(),
              static_cast<unsigned long long>(stream.cells()), host_cpus);

  const int kReps = 3;
  const size_t kWorkerCounts[] = {1, 2, 4, 8};

  AsciiTable table({"Workers", "Serial ms", "Parallel ms", "Speedup", "Match", "BP waits"});
  struct Row {
    size_t workers;
    double serial_ms;
    double parallel_ms;
    double speedup;
    bool match;
    uint64_t backpressure_waits;
  };
  std::vector<Row> rows;
  double speedup_at_4 = 0.0;
  bool all_match = true;

  for (size_t workers : kWorkerCounts) {
    const RunResult serial = RunTimed(*compiled, stream, workers, /*parallel=*/false, kReps);
    const RunResult parallel = RunTimed(*compiled, stream, workers, /*parallel=*/true, kReps);
    const bool match = serial.multiset == parallel.multiset;
    all_match = all_match && match;
    const double speedup = parallel.ms > 0.0 ? serial.ms / parallel.ms : 0.0;
    if (workers == 4) {
      speedup_at_4 = speedup;
    }
    table.AddRow({std::to_string(workers), AsciiTable::Num(serial.ms, 1),
                  AsciiTable::Num(parallel.ms, 1), AsciiTable::Num(speedup, 2) + "x",
                  match ? "yes" : "NO", std::to_string(parallel.backpressure_waits)});
    rows.push_back({workers, serial.ms, parallel.ms, speedup, match,
                    parallel.backpressure_waits});
  }
  table.Print();

  std::printf("\nSpeedup at 4 workers: %.2fx (target >= 1.5x on a >= 4-core host), "
              "multisets %s\n",
              speedup_at_4, all_match ? "identical" : "DIVERGED");
  if (host_cpus < 4) {
    std::printf("NOTE: only %u CPU(s) visible — worker threads time-slice one core, so "
                "wall-clock speedup is bounded by 1.0x here; the run still validates "
                "correctness and queue overhead (parallel/serial ratio).\n",
                host_cpus);
  }

  std::ofstream out("BENCH_parallel_cluster.json");
  if (out) {
    JsonWriter w(out);
    w.BeginObject();
    w.FieldStr("bench", "parallel_cluster");
    w.FieldUint("trace_packets", trace.size());
    w.FieldUint("mgpv_cells", stream.cells());
    w.FieldUint("reps", static_cast<uint64_t>(kReps));
    w.FieldUint("host_cpus", host_cpus);
    w.Key("runs");
    w.BeginArray();
    for (const Row& row : rows) {
      w.BeginObject();
      w.FieldUint("workers", row.workers);
      w.FieldDouble("serial_ms", row.serial_ms);
      w.FieldDouble("parallel_ms", row.parallel_ms);
      w.FieldDouble("speedup", row.speedup);
      w.FieldBool("multiset_match", row.match);
      w.FieldUint("backpressure_waits", row.backpressure_waits);
      w.EndObject();
    }
    w.EndArray();
    w.FieldDouble("speedup_at_4_workers", speedup_at_4);
    w.FieldBool("all_multisets_match", all_match);
    w.FieldDouble("speedup_target", 1.5);
    w.FieldBool("speedup_target_applies", host_cpus >= 4);
    w.EndObject();
    out << "\n";
    std::printf("Wrote BENCH_parallel_cluster.json\n");
  }

  std::printf(
      "\nShape check: speedup grows with workers until queue overhead and the\n"
      "single-producer routing loop dominate; the feature multiset never changes\n"
      "(lossless backpressure, per-group FIFO preserved by CG-hash routing).\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
