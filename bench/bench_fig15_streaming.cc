// Fig 15: FE-NIC memory consumption and feature-computation cost with
// streaming algorithms vs the naive (buffer-everything, two-pass) approach,
// as traffic volume grows.
//
// Streaming state is O(1) per group; the naive extractor's buffers grow
// linearly with traffic and its per-emission recomputation grows with the
// buffered length — exceeding NIC memory long before the trace ends.
#include <cstdio>
#include <unordered_map>

#include "apps/policies.h"
#include "common/table.h"
#include "net/trace_gen.h"
#include "nicsim/fe_nic.h"
#include "policy/compile.h"
#include "streaming/naive.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

void Run() {
  std::printf("== Fig 15: streaming vs naive feature computation on the NIC ==\n\n");

  auto app = AppPolicyByName("Kitsune");
  auto compiled = Compile(app->policy);
  const uint32_t streaming_state = compiled->nic_program.StateBytesPerGroup();

  // Long-lived flows (the IoT/enterprise monitoring regime Kitsune targets):
  // a bounded set of concurrent conversations observed for a long time. The
  // naive two-pass extractor must buffer each group's entire history, so its
  // memory grows with *traffic*, while streaming state is fixed per group.
  TraceProfile profile = MawiIxpProfile();
  profile.mean_flow_length_pkts = 400.0;
  profile.flow_length_sigma = 0.4;
  profile.src_pool = 1200;
  profile.dst_pool = 400;
  const Trace trace = GenerateTrace(profile, 400000, 0xf15);

  // Naive baseline: per-socket buffered samples of (size, ipt) per window —
  // the two-pass version of the same 115 features.
  std::unordered_map<FiveTuple, NaiveStats, FiveTupleHash> naive_sizes;
  std::unordered_map<FiveTuple, NaiveStats, FiveTupleHash> naive_times;

  // Streaming: the real FE-NIC over the MGPV stream.
  class NullSink : public FeatureSink {
   public:
    void OnFeatureVector(FeatureVector&&) override {}
  };
  NullSink sink;
  auto nic = std::move(FeNic::Create(*compiled, FeNicConfig{}, &sink)).value();
  FeSwitch fe(*compiled, nic.get());

  AsciiTable table({"Packets", "Streaming memory", "Naive memory", "Streaming cycles/pkt",
                    "Naive cycles/pkt"});
  const CycleCosts costs;
  size_t count = 0;
  uint64_t naive_recompute_samples = 0;
  for (const auto& pkt : trace.packets()) {
    fe.OnPacket(pkt);
    const FiveTuple key = GroupKey::InitiatorTuple(pkt);
    auto& sizes = naive_sizes[key];
    auto& times = naive_times[key];
    sizes.Add(pkt.wire_bytes);
    times.Add(static_cast<double>(pkt.timestamp_ns));
    // Per-packet feature emission (Kitsune collects per packet): the naive
    // approach re-runs two passes over everything buffered for this group.
    naive_recompute_samples += 2 * sizes.count();

    if (++count % 100000 == 0) {
      uint64_t streaming_bytes = 0;
      const auto group_counts = nic->GroupCounts();
      const auto& grans = compiled->nic_program.granularities;
      for (size_t gi = 0; gi < group_counts.size() && gi < grans.size(); ++gi) {
        // Approximate: states are split evenly across the chain.
        streaming_bytes += group_counts[gi] * (streaming_state / grans.size());
      }
      uint64_t naive_bytes = 0;
      for (const auto& [k, stats] : naive_sizes) {
        naive_bytes += stats.MemoryBytes();
      }
      for (const auto& [k, stats] : naive_times) {
        naive_bytes += stats.MemoryBytes();
      }
      const double streaming_cycles =
          static_cast<double>(nic->perf().EffectiveCycles()) / std::max<uint64_t>(
              nic->perf().cells(), 1);
      // Naive per-packet cost: two passes over the group's buffered history
      // at each (per-packet) emission, ~3 ALU ops per buffered sample, plus
      // the same dispatch overhead the streaming path pays.
      const double naive_cycles =
          static_cast<double>(naive_recompute_samples) * costs.alu * 3.0 / count +
          costs.dispatch;
      table.AddRow({std::to_string(count),
                    AsciiTable::Num(streaming_bytes / 1048576.0, 2) + " MB",
                    AsciiTable::Num(naive_bytes / 1048576.0, 2) + " MB",
                    AsciiTable::Num(streaming_cycles, 0),
                    AsciiTable::Num(naive_cycles, 0)});
    }
  }
  table.Print();

  std::printf(
      "\nOn-chip SRAM across the NFP hierarchy is ~7.3 MB: the naive buffers exceed it\n"
      "within the first hundred thousand packets, while streaming state stays flat\n"
      "(%u B per group) and per-packet cost stays constant.\n",
      streaming_state);
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
