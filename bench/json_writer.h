// Bench-harness JSON emission. The single implementation lives in
// common/json_writer.h (shared with the observability exports); this header
// exists so bench code keeps a local include and never grows a second
// hand-rolled escaper.
#ifndef SUPERFE_BENCH_JSON_WRITER_H_
#define SUPERFE_BENCH_JSON_WRITER_H_

#include "common/json_writer.h"

#endif  // SUPERFE_BENCH_JSON_WRITER_H_
