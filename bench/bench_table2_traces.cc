// Table 2: workload traffic traces.
//
// Regenerates the three evaluation workloads and verifies their aggregate
// characteristics against the paper's Table 2.
#include <cstdio>

#include "common/table.h"
#include "net/trace_gen.h"

namespace superfe {
namespace {

void Run() {
  std::printf("== Table 2: workload traffic traces ==\n");
  std::printf("(synthetic, seeded; targets from the paper)\n\n");

  AsciiTable table({"Traffic Trace", "Avg Flow Length (target)", "Avg Flow Length (ours)",
                    "Avg Packet Size (target)", "Avg Packet Size (ours)", "Flows", "Offered"});
  for (const TraceProfile& profile : PaperProfiles()) {
    const Trace trace = GenerateTrace(profile, 400000, 0xdecaf);
    const TraceStats stats = trace.ComputeStats();
    table.AddRow({profile.name,
                  AsciiTable::Num(profile.mean_flow_length_pkts, 1) + " pkts/flow",
                  AsciiTable::Num(stats.avg_flow_length_pkts, 1) + " pkts/flow",
                  AsciiTable::Num(profile.target_mean_packet_size, 0) + " B/pkt",
                  AsciiTable::Num(stats.avg_packet_size_bytes, 0) + " B/pkt",
                  std::to_string(stats.flow_count),
                  AsciiTable::Num(stats.offered_gbps, 2) + " Gbps"});
  }
  table.Print();
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
