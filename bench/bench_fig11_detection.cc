// Fig 11: detection accuracy of Kitsune (KitNET autoencoder ensemble)
// across four attack scenarios, with features extracted by SuperFE vs by
// the exact software extractor. The paper's claim is fidelity: SuperFE's
// feature vectors do not degrade detection accuracy.
#include <cmath>
#include <cstdio>

#include "apps/kitsune_study.h"
#include "common/table.h"

namespace superfe {
namespace {

void Run() {
  std::printf("== Fig 11: Kitsune detection accuracy with SuperFE features ==\n\n");

  const AttackType kAttacks[] = {AttackType::kOsScan, AttackType::kSsdpFlood,
                                 AttackType::kSynDos, AttackType::kMiraiScan};

  AsciiTable table({"Attack", "Features", "AUC", "Accuracy", "F1"});
  bool parity = true;
  bool detects = true;
  for (AttackType attack : kAttacks) {
    KitsuneStudyConfig config;
    config.background_packets = 50000;
    config.attack_packets = 12000;
    config.seed = 0xf11 + static_cast<uint64_t>(attack);

    config.use_superfe = true;
    auto superfe = RunKitsuneDetection(attack, config);
    config.use_superfe = false;
    auto software = RunKitsuneDetection(attack, config);
    if (!superfe.ok() || !software.ok()) {
      std::fprintf(stderr, "attack %d failed\n", static_cast<int>(attack));
      continue;
    }
    table.AddRow({superfe->attack, "SuperFE", AsciiTable::Num(superfe->auc, 3),
                  AsciiTable::Percent(superfe->accuracy, 1), AsciiTable::Num(superfe->f1, 3)});
    table.AddRow({"", "software (exact)", AsciiTable::Num(software->auc, 3),
                  AsciiTable::Percent(software->accuracy, 1),
                  AsciiTable::Num(software->f1, 3)});
    parity &= std::fabs(superfe->auc - software->auc) < 0.05;
    detects &= superfe->auc > 0.75;
  }
  table.Print();
  std::printf(
      "\nShape check: SuperFE features preserve detection accuracy (|dAUC| < 0.05 vs the\n"
      "exact software extractor): %s; every attack is detected (AUC > 0.75): %s.\n",
      parity ? "PASS" : "FAIL", detects ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
