// Fig 10: relative error of extracted feature vectors vs the standard
// feature definitions, for Kitsune's 115-dimension feature set.
//
//  - "standard": exact double-precision damped statistics over the complete
//    packet stream (ground truth);
//  - "SuperFE": the FE-NIC arithmetic (fixed point, LUT decay, division
//    elimination) through the full switch+NIC pipeline, including MGPV
//    batching effects;
//  - "original Kitsune": the software deployment — float32 AfterImage
//    arithmetic over *captured* traffic. At the paper's offered rates the
//    kernel-capture path cannot keep up (the core motivation, §2.2); we
//    model capture at 1 Mpps against a 40 Gbps offered load (~25% of
//    packets captured, documented in EXPERIMENTS.md).
//
// Error metric: per-vector relative error ||got - want|| / ||want||,
// averaged over matched vectors (vectors are matched per FG group by
// timestamp order; MGPV emits in eviction order).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/policies.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/runtime.h"
#include "core/software_extractor.h"
#include "net/trace_gen.h"

namespace superfe {
namespace {

using TimedVectors = std::vector<std::pair<uint64_t, std::vector<double>>>;
using VectorsByKey = std::map<std::string, TimedVectors>;

std::string KeyString(const GroupKey& key) {
  return std::string(reinterpret_cast<const char*>(key.bytes.data()), key.length);
}

// Retains a deterministic 1-in-4 sample of FG groups (memory bound).
class KeyedSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&& vector) override {
    if (vector.group.Hash() % 4 != 0) {
      return;
    }
    by_key_[KeyString(vector.group)].emplace_back(vector.timestamp_ns,
                                                  std::move(vector.values));
  }
  VectorsByKey& by_key() {
    for (auto& [key, vectors] : by_key_) {
      std::sort(vectors.begin(), vectors.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return by_key_;
  }

 private:
  VectorsByKey by_key_;
};

// Per-vector relative errors ||got - want|| / ||want||; reports the median
// and p90 (newborn-group vectors with near-zero truth norm make the plain
// mean meaningless).
double CompareAgainst(const VectorsByKey& truth, const VectorsByKey& got, double* mean_out) {
  std::vector<double> errors;
  for (const auto& [key, truth_vectors] : truth) {
    const auto it = got.find(key);
    if (it == got.end()) {
      continue;
    }
    const size_t n = std::min(truth_vectors.size(), it->second.size());
    for (size_t i = 0; i < n; ++i) {
      const auto& want = truth_vectors[i].second;
      const auto& have = it->second[i].second;
      double diff2 = 0.0;
      double norm2 = 0.0;
      for (size_t f = 0; f < want.size() && f < have.size(); ++f) {
        const double d = have[f] - want[f];
        diff2 += d * d;
        norm2 += want[f] * want[f];
      }
      if (norm2 <= 0.0) {
        continue;
      }
      errors.push_back(std::sqrt(diff2 / norm2));
    }
  }
  if (errors.empty()) {
    return 0.0;
  }
  std::sort(errors.begin(), errors.end());
  if (mean_out != nullptr) {
    *mean_out = errors[static_cast<size_t>(0.9 * (errors.size() - 1))];
  }
  return errors[errors.size() / 2];
}

// For groups the capture missed entirely, every vector is an error of 1.
double MissingGroupPenalty(const VectorsByKey& truth, const VectorsByKey& got,
                           uint64_t* missing_vectors) {
  *missing_vectors = 0;
  for (const auto& [key, truth_vectors] : truth) {
    if (got.find(key) == got.end()) {
      *missing_vectors += truth_vectors.size();
    } else {
      const auto& have = got.at(key);
      if (truth_vectors.size() > have.size()) {
        *missing_vectors += truth_vectors.size() - have.size();
      }
    }
  }
  return static_cast<double>(*missing_vectors);
}

void Run() {
  std::printf("== Fig 10: relative error of extracted features (Kitsune, 115-dim) ==\n\n");

  const Policy policy = KitsunePolicy();
  auto compiled = Compile(policy);
  // One second of IX-link traffic. The aging mechanism bounds MGPV batching
  // delay to ~10 ms (§8.4), small against the damped feature windows.
  const Trace trace = GenerateTrace(MawiIxpProfile(), 250000, 0xf10);

  // Ground truth: exact double arithmetic over the complete stream.
  KeyedSink truth;
  {
    auto extractor = SoftwareExtractor::Create(*compiled, ExactExecOptions());
    (*extractor)->Run(trace, &truth, SoftwareDeployment{});
  }

  // SuperFE: NIC arithmetic through the full switch+NIC pipeline.
  KeyedSink superfe;
  {
    RuntimeConfig config;  // nic_arithmetic defaults to true.
    auto runtime = SuperFeRuntime::Create(policy, config);
    (*runtime)->Run(trace, &superfe);
  }

  // Original Kitsune: float32 arithmetic over what its capture path keeps
  // at the paper's offered rate (40 Gbps -> ~4 Mpps vs ~1 Mpps capture).
  const double kCaptureKeepFraction = 0.25;
  KeyedSink original;
  {
    Trace captured("captured");
    Rng rng(0xca97);
    for (const auto& pkt : trace.packets()) {
      if (rng.Bernoulli(kCaptureKeepFraction)) {
        captured.Add(pkt);
      }
    }
    ExecOptions options;
    options.nic_arithmetic = false;
    options.damped_mode = DampedMode::kFloat32;
    auto extractor = SoftwareExtractor::Create(*compiled, options);
    (*extractor)->Run(captured, &original, SoftwareDeployment{});
  }

  double superfe_p90 = 0.0;
  double original_p90 = 0.0;
  const double superfe_err = CompareAgainst(truth.by_key(), superfe.by_key(), &superfe_p90);
  const double original_err = CompareAgainst(truth.by_key(), original.by_key(), &original_p90);
  uint64_t superfe_missing = 0;
  uint64_t original_missing = 0;
  MissingGroupPenalty(truth.by_key(), superfe.by_key(), &superfe_missing);
  MissingGroupPenalty(truth.by_key(), original.by_key(), &original_missing);

  AsciiTable table({"Extractor", "Median vector error", "p90 vector error",
                    "Vectors never produced"});
  table.AddRow({"SuperFE (FE-NIC arithmetic, full pipeline)",
                AsciiTable::Percent(superfe_err, 2), AsciiTable::Percent(superfe_p90, 2),
                std::to_string(superfe_missing)});
  table.AddRow({"Original Kitsune (float32, lossy capture)",
                AsciiTable::Percent(original_err, 2), AsciiTable::Percent(original_p90, 2),
                std::to_string(original_missing)});
  table.Print();

  std::printf("\nShape check: SuperFE extraction error is below 4%% (%s) and below the\n"
              "original software deployment's error (%s); the software path additionally\n"
              "never produces vectors for packets its capture dropped.\n",
              superfe_err < 0.04 ? "PASS" : "FAIL",
              superfe_err < original_err ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
