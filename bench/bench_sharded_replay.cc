// Sharded FE-Switch + parallel replay driver: end-to-end producer-side
// throughput (pkts/s through replay+switch+MGPV+NIC) vs shard count and NIC
// worker count, with a hard correctness gate — every configuration's feature
// multiset must be identical to the serial (shards=1, workers=0) reference.
//
// Emits BENCH_sharded_replay.json next to the ascii table. host_cpus is
// recorded: on a single-CPU host the shard threads time-slice one core, so
// wall-clock scaling is bounded by 1.0x there (the scaling model is
// documented in docs/ARCHITECTURE.md — producer work is embarrassingly
// parallel after the up-front partition, so throughput scales with
// min(shards, cores) until the NIC side saturates); the run still validates
// correctness and measures sharding overhead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/table.h"
#include "core/runtime.h"
#include "json_writer.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

namespace superfe {
namespace {

// CG == FG == flow so every granularity nests inside the CG-hash partition
// and the sharded feature stream is bit-identical to the serial reference.
const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max, f_mean, f_std])
  .reduce(ipt, [f_mean, f_max, f_std])
  .collect(flow)
)";

using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct RunResult {
  double ms = 0.0;
  double pkts_per_s = 0.0;
  std::vector<VectorKey> multiset;
};

RunResult RunOnce(const Policy& policy, const Trace& trace, uint32_t shards,
                  uint32_t workers) {
  RuntimeConfig config;
  config.switch_shards = shards;
  config.worker_threads = workers;
  auto runtime = std::move(SuperFeRuntime::Create(policy, config)).value();
  CollectingFeatureSink sink;

  const auto start = std::chrono::steady_clock::now();
  const RunReport report = runtime->Run(trace, &sink);
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.ms = std::chrono::duration<double, std::milli>(end - start).count();
  result.pkts_per_s =
      result.ms > 0.0 ? static_cast<double>(report.offered.packets) / (result.ms * 1e-3) : 0.0;
  result.multiset = SortedMultiset(sink.vectors());
  return result;
}

RunResult RunTimed(const Policy& policy, const Trace& trace, uint32_t shards,
                   uint32_t workers, int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    RunResult run = RunOnce(policy, trace, shards, workers);
    if (r == 0 || run.ms < best.ms) {
      best.ms = run.ms;
      best.pkts_per_s = run.pkts_per_s;
    }
    best.multiset = std::move(run.multiset);
  }
  return best;
}

void Run() {
  std::printf("== Sharded FE-Switch + parallel replay: end-to-end pkts/s ==\n\n");

  auto policy = ParsePolicy("sharded_bench", kPolicy);
  const Trace trace = GenerateTrace(MawiIxpProfile(), 300000, 0x5fe5);
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Trace: %zu packets, host CPUs: %u\n\n", trace.size(), host_cpus);

  const int kReps = 3;
  const uint32_t kShardCounts[] = {1, 2, 4};
  const uint32_t kWorkerCounts[] = {0, 2, 4};

  const RunResult reference = RunTimed(*policy, trace, 1, 0, kReps);
  const double reference_pps = reference.pkts_per_s;

  AsciiTable table({"Shards", "Workers", "ms", "pkts/s", "vs serial", "Match"});
  struct Row {
    uint32_t shards;
    uint32_t workers;
    double ms;
    double pkts_per_s;
    double speedup;
    bool match;
  };
  std::vector<Row> rows;
  bool all_match = true;

  for (uint32_t shards : kShardCounts) {
    for (uint32_t workers : kWorkerCounts) {
      const RunResult run = (shards == 1 && workers == 0)
                                ? reference
                                : RunTimed(*policy, trace, shards, workers, kReps);
      const bool match = run.multiset == reference.multiset;
      all_match = all_match && match;
      const double speedup = reference.ms > 0.0 ? reference.ms / run.ms : 0.0;
      table.AddRow({std::to_string(shards), std::to_string(workers),
                    AsciiTable::Num(run.ms, 1), AsciiTable::Num(run.pkts_per_s / 1e6, 2) + "M",
                    AsciiTable::Num(speedup, 2) + "x", match ? "yes" : "NO"});
      rows.push_back({shards, workers, run.ms, run.pkts_per_s, speedup, match});
    }
  }
  table.Print();

  std::printf("\nMultisets %s across all shard/worker configurations.\n",
              all_match ? "identical" : "DIVERGED");
  if (host_cpus < 4) {
    std::printf("NOTE: only %u CPU(s) visible — shard and worker threads time-slice, so "
                "wall-clock scaling is bounded by 1.0x here; throughput scales with "
                "min(shards, cores) on multi-core hosts (see docs/ARCHITECTURE.md).\n",
                host_cpus);
  }

  std::ofstream out("BENCH_sharded_replay.json");
  if (out) {
    JsonWriter w(out);
    w.BeginObject();
    w.FieldStr("bench", "sharded_replay");
    w.FieldUint("trace_packets", trace.size());
    w.FieldUint("reps", static_cast<uint64_t>(kReps));
    w.FieldUint("host_cpus", host_cpus);
    w.FieldDouble("reference_pkts_per_s", reference_pps);
    w.Key("runs");
    w.BeginArray();
    for (const Row& row : rows) {
      w.BeginObject();
      w.FieldUint("shards", row.shards);
      w.FieldUint("workers", row.workers);
      w.FieldDouble("ms", row.ms);
      w.FieldDouble("pkts_per_s", row.pkts_per_s);
      w.FieldDouble("speedup_vs_serial", row.speedup);
      w.FieldBool("multiset_match", row.match);
      w.EndObject();
    }
    w.EndArray();
    w.FieldBool("all_multisets_match", all_match);
    w.FieldBool("scaling_expected", host_cpus >= 2);
    w.FieldStr("scaling_model",
               "throughput ~ min(shards, host_cpus) x serial, until the NIC side or the "
               "up-front partition dominates; on host_cpus=1 the run validates correctness "
               "and overhead only");
    w.EndObject();
    out << "\n";
    std::printf("Wrote BENCH_sharded_replay.json\n");
  }
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
