// Table 4: hardware resource utilization for the four application studies —
// switch match-action tables, stateful ALUs and SRAM, plus hierarchical NIC
// memory (from the ILP placement).
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "core/runtime.h"

namespace superfe {
namespace {

void Run() {
  std::printf("== Table 4: hardware resource utilization ==\n\n");

  struct Reference {
    const char* name;
    double tables, salus, sram, nic;
  };
  const Reference kReference[] = {
      {"TF", 0.2604, 0.6875, 0.1656, 0.4917},
      {"N-BaIoT", 0.3073, 0.7292, 0.1823, 0.5730},
      {"NPOD", 0.2604, 0.6875, 0.1656, 0.7446},
      {"Kitsune", 0.3177, 0.7708, 0.1875, 0.6081},
  };

  const TofinoCapacity capacity;
  AsciiTable table({"App", "Tables", "(paper)", "sALUs", "(paper)", "SRAM", "(paper)",
                    "NIC Memory", "(paper)"});
  for (const Reference& ref : kReference) {
    auto app = AppPolicyByName(ref.name);
    auto runtime = SuperFeRuntime::Create(app->policy, RuntimeConfig{});
    if (!runtime.ok()) {
      continue;
    }
    const SwitchResourceUsage usage = (*runtime)->SwitchResources();
    const double nic_util = (*runtime)->NicMemoryUtilization();
    table.AddRow({ref.name, AsciiTable::Percent(usage.TablesFraction(capacity), 2),
                  AsciiTable::Percent(ref.tables, 2),
                  AsciiTable::Percent(usage.SalusFraction(capacity), 2),
                  AsciiTable::Percent(ref.salus, 2),
                  AsciiTable::Percent(usage.SramFraction(capacity), 2),
                  AsciiTable::Percent(ref.sram, 2), AsciiTable::Percent(nic_util, 2),
                  AsciiTable::Percent(ref.nic, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: stateful ALUs are the dominant switch consumer; table and SRAM\n"
      "utilization stay modest; NIC memory is substantial but not exhausted.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
