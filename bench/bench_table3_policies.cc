// Table 3: lines of code to implement the ten state-of-the-art feature
// extractors with SuperFE, plus the compiled feature dimensions.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "policy/compile.h"

namespace superfe {
namespace {

void Run() {
  std::printf("== Table 3: feature extractors re-implemented with SuperFE ==\n\n");

  AsciiTable table({"Application", "Objective", "Feature Dim (paper)", "Feature Dim (ours)",
                    "LoC (paper)", "LoC (ours)"});
  for (const AppPolicy& app : AllAppPolicies()) {
    auto compiled = Compile(app.policy);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed for %s: %s\n", app.name.c_str(),
                   compiled.status().ToString().c_str());
      continue;
    }
    table.AddRow({app.name, app.objective, std::to_string(app.paper_dimension),
                  std::to_string(compiled->nic_program.FeatureDimension()),
                  std::to_string(app.paper_loc), std::to_string(app.policy.LinesOfCode())});
  }
  table.Print();
  std::printf(
      "\nEvery policy compiles to its published feature dimension; LoC differs\n"
      "slightly from the paper's counts because our DSL formats one operator per line.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
