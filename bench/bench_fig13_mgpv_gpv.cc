// Fig 13: resource efficiency of MGPV vs \*Flow's single-granularity GPV
// when applications group at 1 / 2 / 3 granularities (TF / N-BaIoT /
// Kitsune). GPV needs one full cache instance per granularity (memory and
// switch->NIC bandwidth scale linearly); MGPV stores each packet's metadata
// once and re-splits on the NIC.
#include <cstdio>
#include <memory>

#include "apps/policies.h"
#include "common/table.h"
#include "net/trace_gen.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

class NullMgpvSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport&) override {}
  void OnFgSync(const FgSyncMessage&) override {}
};

void Run() {
  std::printf("== Fig 13: MGPV vs GPV with multi-granularity applications ==\n\n");

  const char* kApps[] = {"TF", "N-BaIoT", "Kitsune"};
  const Trace trace = GenerateTrace(EnterpriseProfile(), 250000, 0xf13);

  AsciiTable table({"App", "Granularities", "MGPV memory", "GPV memory", "MGPV to-NIC",
                    "GPV to-NIC"});
  for (const char* name : kApps) {
    auto app = AppPolicyByName(name);
    auto compiled = Compile(app->policy);
    const auto& chain = compiled->switch_program.chain;

    // MGPV: one cache for the whole chain.
    uint64_t mgpv_bytes_out = 0;
    uint64_t mgpv_memory = 0;
    {
      NullMgpvSink sink;
      FeSwitch fe(*compiled, &sink);
      for (const auto& pkt : trace.packets()) {
        fe.OnPacket(pkt);
      }
      fe.Flush();
      mgpv_bytes_out = fe.cache().stats().bytes_out;
      mgpv_memory = fe.cache().config().MemoryFootprintBytes();
    }

    // GPV baseline: one full single-granularity cache per granularity, each
    // seeing all (filtered) packets.
    uint64_t gpv_bytes_out = 0;
    uint64_t gpv_memory = 0;
    for (Granularity g : chain) {
      MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
      config.cg = g;
      config.fg = g;
      config.multi_granularity = false;
      NullMgpvSink sink;
      MgpvCache cache(config, &sink);
      for (const auto& pkt : trace.packets()) {
        if (compiled->switch_program.filter.Matches(pkt)) {
          cache.Insert(pkt);
        }
      }
      cache.Flush();
      gpv_bytes_out += cache.stats().bytes_out;
      gpv_memory += config.MemoryFootprintBytes();
    }

    table.AddRow({name, std::to_string(chain.size()),
                  AsciiTable::Num(mgpv_memory / 1048576.0, 2) + " MB",
                  AsciiTable::Num(gpv_memory / 1048576.0, 2) + " MB",
                  AsciiTable::Num(mgpv_bytes_out / 1048576.0, 2) + " MB",
                  AsciiTable::Num(gpv_bytes_out / 1048576.0, 2) + " MB"});
  }
  table.Print();
  std::printf(
      "\nShape check: MGPV's footprint and switch->NIC traffic stay roughly constant\n"
      "as granularities grow, while GPV scales linearly with the chain length.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
