// Ablation: group-table placement strategy on the NIC (§6.2's ILP vs
// simpler alternatives) — per-packet state-access latency and the resulting
// FE-NIC throughput.
#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "apps/policies.h"
#include "common/table.h"
#include "nicsim/placement.h"
#include "policy/compile.h"

namespace superfe {
namespace {

// All states forced to EMEM (the no-placement baseline).
PlacementResult AllEmem(const PlacementProblem& problem) {
  PlacementResult result;
  result.assignment.assign(problem.states.size(), MemLevel::kEmem);
  result.optimal = false;
  for (size_t i = 0; i < problem.states.size(); ++i) {
    result.level_bytes[static_cast<int>(MemLevel::kEmem)] += problem.states[i].bytes;
    result.objective += static_cast<uint64_t>(std::max<uint32_t>(
                            problem.states[i].accesses_per_packet, 1)) *
                        problem.arch.memory(MemLevel::kEmem).latency_cycles;
  }
  return result;
}

// Greedy: most-accessed state first into the fastest level with room.
PlacementResult Greedy(const PlacementProblem& problem) {
  // SolvePlacement's fallback is exactly the greedy; reuse it by forcing
  // the B&B to be skipped via a copy with a huge instance is not possible,
  // so re-implement the simple loop here.
  PlacementResult result;
  result.assignment.assign(problem.states.size(), MemLevel::kEmem);
  result.optimal = false;
  std::vector<size_t> order(problem.states.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return problem.states[a].accesses_per_packet > problem.states[b].accesses_per_packet;
  });
  const uint64_t groups =
      static_cast<uint64_t>(problem.groups_per_granularity) * problem.granularity_instances;
  std::array<uint64_t, kNumMemLevels> used{};
  for (size_t i : order) {
    int chosen = static_cast<int>(MemLevel::kEmem);
    for (int level = 0; level < kNumMemLevels; ++level) {
      const MemLevelSpec& spec = problem.arch.memories[level];
      const uint32_t width = std::max<uint32_t>(problem.table_width[level], 1);
      const uint64_t bus_budget = spec.level == MemLevel::kEmem
                                      ? UINT64_MAX
                                      : (spec.bus_bytes / width > problem.key_bytes
                                             ? spec.bus_bytes / width - problem.key_bytes
                                             : 0);
      const uint64_t cap_budget =
          groups > 0 ? (spec.capacity_bytes / groups > problem.key_bytes
                            ? spec.capacity_bytes / groups - problem.key_bytes
                            : 0)
                     : UINT64_MAX;
      if (used[level] + problem.states[i].bytes <= bus_budget &&
          used[level] + problem.states[i].bytes <= cap_budget) {
        chosen = level;
        break;
      }
    }
    used[chosen] += problem.states[i].bytes;
    result.assignment[i] = static_cast<MemLevel>(chosen);
    result.level_bytes[chosen] += problem.states[i].bytes;
    result.objective += static_cast<uint64_t>(std::max<uint32_t>(
                            problem.states[i].accesses_per_packet, 1)) *
                        problem.arch.memories[chosen].latency_cycles;
  }
  return result;
}

void Run() {
  std::printf("== Ablation: NIC group-table placement strategy ==\n\n");

  AsciiTable table({"App", "Strategy", "Objective (cycles)", "Latency/pkt (cycles)",
                    "Levels used"});
  for (const char* name : {"TF", "N-BaIoT", "NPOD", "Kitsune"}) {
    auto app = AppPolicyByName(name);
    auto compiled = Compile(app->policy);
    PlacementProblem problem;
    problem.states = compiled->nic_program.states;
    problem.key_bytes = compiled->switch_program.FgKeyBytes();
    problem.table_width = DefaultTableWidths(compiled->nic_program.StateBytesPerGroup());

    struct Row {
      const char* strategy;
      PlacementResult result;
    };
    std::vector<Row> rows;
    rows.push_back({"ILP (SuperFE)", std::move(SolvePlacement(problem)).value()});
    rows.push_back({"greedy", Greedy(problem)});
    rows.push_back({"all-EMEM", AllEmem(problem)});

    for (const Row& row : rows) {
      int levels = 0;
      for (uint64_t bytes : row.result.level_bytes) {
        levels += bytes > 0 ? 1 : 0;
      }
      table.AddRow({name, row.strategy, std::to_string(row.result.objective),
                    std::to_string(row.result.LatencyPerPacket(problem.arch, problem.states)),
                    std::to_string(levels)});
    }
  }
  table.Print();
  std::printf(
      "\nReading: the ILP never loses to greedy and both beat all-EMEM; with few state\n"
      "items the greedy often matches the ILP (the paper's instances are small, which\n"
      "is also why solving the ILP at policy-install time is cheap).\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
