// Fig 17: ablation of the FE-NIC optimizations (§6.2) on the Kitsune
// policy — switch-hash reuse, thread-level latency hiding, and division
// elimination, enabled incrementally.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "core/runtime.h"
#include "net/trace_gen.h"

namespace superfe {
namespace {

class NullSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override {}
};

double ThroughputWith(const Policy& policy, const Trace& trace, NicOptimizations opts) {
  RuntimeConfig config;
  config.nic.optimizations = opts;
  auto runtime = SuperFeRuntime::Create(policy, config);
  NullSink sink;
  (*runtime)->Run(trace, &sink);
  return (*runtime)->nic().perf().ThroughputPps(120) * 1e-6;
}

void Run() {
  std::printf("== Fig 17: FE-NIC optimization ablation (Kitsune policy, 120 cores) ==\n\n");

  auto app = AppPolicyByName("Kitsune");
  const Trace trace = GenerateTrace(MawiIxpProfile(), 150000, 0xf17);

  NicOptimizations none = NicOptimizations::None();
  NicOptimizations with_hash = none;
  with_hash.reuse_switch_hash = true;
  NicOptimizations with_threads = with_hash;
  with_threads.multithreading = true;
  NicOptimizations all = with_threads;
  all.eliminate_division = true;

  const double base = ThroughputWith(app->policy, trace, none);
  const double hash = ThroughputWith(app->policy, trace, with_hash);
  const double threads = ThroughputWith(app->policy, trace, with_threads);
  const double full = ThroughputWith(app->policy, trace, all);

  AsciiTable table({"Configuration", "Throughput (Mpps)", "Speedup vs baseline"});
  table.AddRow({"baseline (no optimizations)", AsciiTable::Num(base, 2), "1.00x"});
  table.AddRow({"+ reuse switch hash", AsciiTable::Num(hash, 2),
                AsciiTable::Num(hash / base, 2) + "x"});
  table.AddRow({"+ thread latency hiding", AsciiTable::Num(threads, 2),
                AsciiTable::Num(threads / base, 2) + "x"});
  table.AddRow({"+ division elimination (all)", AsciiTable::Num(full, 2),
                AsciiTable::Num(full / base, 2) + "x"});
  table.Print();

  std::printf(
      "\nShape check: all optimizations together reach ~4x (%s); division elimination\n"
      "contributes the largest single step (%s).\n",
      full / base > 3.0 ? "PASS" : "FAIL",
      (full / threads) > (hash / base) && (full / threads) > (threads / hash) ? "PASS"
                                                                              : "FAIL");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
