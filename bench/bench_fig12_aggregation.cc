// Fig 12: aggregation ratio of MGPV — how much of the original traffic
// (message rate and bytes) still crosses the switch->SmartNIC link after
// batching, for four applications x three workload traces.
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "net/trace_gen.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

class NullMgpvSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport&) override {}
  void OnFgSync(const FgSyncMessage&) override {}
};

void Run() {
  std::printf("== Fig 12: MGPV aggregation ratio ==\n");
  std::printf("(fraction of the original rate/bytes that reaches the SmartNIC)\n\n");

  const char* kApps[] = {"TF", "N-BaIoT", "NPOD", "Kitsune"};

  AsciiTable table({"App", "Trace", "Rate ratio", "Byte ratio", "Rate reduction",
                    "Byte reduction"});
  bool all_reduced = true;
  for (const char* name : kApps) {
    auto app = AppPolicyByName(name);
    auto compiled = Compile(app->policy);
    for (const TraceProfile& profile : PaperProfiles()) {
      const Trace trace = GenerateTrace(profile, 250000, 0xf12);
      NullMgpvSink sink;
      FeSwitch fe(*compiled, &sink);
      for (const auto& pkt : trace.packets()) {
        fe.OnPacket(pkt);
      }
      fe.Flush();
      const MgpvStats& stats = fe.cache().stats();
      table.AddRow({name, profile.name, AsciiTable::Percent(stats.MessageRatio(), 1),
                    AsciiTable::Percent(stats.ByteRatio(), 1),
                    AsciiTable::Percent(1.0 - stats.MessageRatio(), 1),
                    AsciiTable::Percent(1.0 - stats.ByteRatio(), 1)});
      all_reduced &= (1.0 - stats.MessageRatio()) > 0.8 && (1.0 - stats.ByteRatio()) > 0.8;
    }
  }
  table.Print();
  std::printf("\nShape check: over 80%% reduction in both receiving rate and receiving\n"
              "throughput for every app x trace: %s.\n",
              all_reduced ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
