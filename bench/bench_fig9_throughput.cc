// Fig 9: throughput of SuperFE-accelerated traffic analysis applications
// vs their original software implementations.
//
// For each of the four §8.3 applications (TF, N-BaIoT, NPOD, Kitsune):
//  - SuperFE: raw-traffic rate the switch+NIC pipeline sustains (NIC cycle
//    model at 120 cores behind the 3.3 Tb/s switch) and the feature-vector
//    output rate;
//  - Software: the measured C++ extraction pipeline mapped onto the
//    original deployment (port mirroring, 16 cores, interpreter overhead of
//    the original Python-based implementations).
#include <cstdio>

#include "apps/policies.h"
#include "common/table.h"
#include "core/runtime.h"
#include "core/software_extractor.h"
#include "net/trace_gen.h"

namespace superfe {
namespace {

class NullSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

void Run() {
  std::printf("== Fig 9: multi-100Gbps performance ==\n\n");

  const Trace trace = GenerateTrace(MawiIxpProfile(), 300000, 0xf19);
  const char* kApps[] = {"TF", "N-BaIoT", "NPOD", "Kitsune"};

  AsciiTable table({"Application", "SuperFE raw traffic", "SuperFE features out",
                    "Bottleneck", "Software (original)", "Speedup"});
  for (const char* name : kApps) {
    auto app = AppPolicyByName(name);
    if (!app.ok()) {
      continue;
    }
    auto runtime = SuperFeRuntime::Create(app->policy, RuntimeConfig{});
    if (!runtime.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, runtime.status().ToString().c_str());
      continue;
    }
    NullSink sink;
    const RunReport report = (*runtime)->Run(trace, &sink);

    auto compiled = Compile(app->policy);
    auto software = SoftwareExtractor::Create(*compiled);
    NullSink sw_sink;
    const SoftwareRunReport sw = (*software)->Run(trace, &sw_sink, SoftwareDeployment{});

    const double speedup = sw.deployed_gbps > 0.0 ? report.sustainable_gbps / sw.deployed_gbps
                                                  : 0.0;
    table.AddRow({name, AsciiTable::Num(report.sustainable_gbps, 0) + " Gbps",
                  AsciiTable::Num(report.feature_output_gbps, 2) + " Gbps", report.bottleneck,
                  AsciiTable::Num(sw.deployed_gbps, 2) + " Gbps",
                  AsciiTable::Num(speedup, 0) + "x"});
  }
  table.Print();
  std::printf(
      "\nShape check: SuperFE sustains multi-100Gbps raw traffic, emits feature\n"
      "vectors at ~Gbps, and exceeds the software baseline by ~2 orders of magnitude.\n");
}

}  // namespace
}  // namespace superfe

int main() {
  superfe::Run();
  return 0;
}
