// Batch-vs-scalar feature-kernel benchmark: for each §6.1 streaming kernel,
// times the per-element Add() loop against the bulk AddBatch() API on the
// same pre-filled input buffer at batch sizes 16 / 256 / 4096, and reports
// the speedup ratio per kernel and batch size.
//
// Emits BENCH_feature_kernels.json with the host CPU count and the active
// SIMD dispatch level (scalar / sse2 / avx2 — see streaming/simd.h), so a
// result is interpretable on its own. Acceptance for the SoA batch path:
// >= 2x over scalar on at least two kernels at batch 4096 on SIMD hosts.
// Set SUPERFE_NO_SIMD=1 to measure the portable 4-lane scalar fallback.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "json_writer.h"
#include "streaming/batch.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/simd.h"
#include "streaming/welford.h"

namespace superfe {
namespace {

// Keeps the value (and everything reachable from it) alive past the
// optimizer without a google-benchmark dependency.
template <typename T>
inline void Keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

constexpr size_t kBatchSizes[] = {16, 256, 4096};
// Elements per timed round; reps = kElemsPerRound / batch so every batch
// size does the same amount of work per round.
constexpr size_t kElemsPerRound = 1 << 21;
constexpr int kRounds = 5;

struct Measurement {
  std::string kernel;
  size_t batch = 0;
  double scalar_ns_per_elem = 0.0;
  double batch_ns_per_elem = 0.0;
  double speedup = 0.0;
};

double MedianOf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Times `fn(reps)` and returns ns per element. The callable runs the kernel
// `reps` times over one `batch`-sized buffer.
template <typename F>
double TimeNsPerElem(F&& fn, size_t batch, size_t reps) {
  const auto t0 = std::chrono::steady_clock::now();
  fn(reps);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(batch * reps);
}

// Runs the scalar and batch paths back to back per round (pairing cancels
// slow drift) and reports the median of the per-round numbers.
template <typename ScalarF, typename BatchF>
Measurement Measure(const char* kernel, size_t batch, ScalarF&& scalar_fn,
                    BatchF&& batch_fn) {
  const size_t reps = kElemsPerRound / batch;
  // Warmup: one short round of each, untimed.
  scalar_fn(reps / 8 + 1);
  batch_fn(reps / 8 + 1);
  std::vector<double> scalar_ns, batch_ns, ratios;
  for (int r = 0; r < kRounds; ++r) {
    const double s = TimeNsPerElem(scalar_fn, batch, reps);
    const double b = TimeNsPerElem(batch_fn, batch, reps);
    scalar_ns.push_back(s);
    batch_ns.push_back(b);
    ratios.push_back(s / b);
  }
  Measurement m;
  m.kernel = kernel;
  m.batch = batch;
  m.scalar_ns_per_elem = MedianOf(scalar_ns);
  m.batch_ns_per_elem = MedianOf(batch_ns);
  m.speedup = MedianOf(ratios);
  return m;
}

std::vector<Measurement> RunAll() {
  Rng rng(42);
  std::vector<double> sizes(4096);   // Packet-size-like values.
  std::vector<double> times(4096);   // Monotone seconds (for damped EWMA).
  std::vector<int64_t> sizes_i(4096);
  std::vector<uint64_t> flows(4096);
  double t = 0.0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    sizes[i] = rng.UniformDouble(40.0, 1500.0);
    t += rng.Exponential(10000.0);
    times[i] = t;
    sizes_i[i] = static_cast<int64_t>(sizes[i]);
    flows[i] = rng.NextU64();
  }
  std::vector<int32_t> buckets(4096);
  std::vector<uint32_t> hashes(4096);

  std::vector<Measurement> out;
  for (const size_t batch : kBatchSizes) {
    const double* v = sizes.data();
    const double* ts = times.data();

    {  // Plain 4-lane sum vs a sequential accumulate.
      double acc = 0.0;
      out.push_back(Measure(
          "sum", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) acc += v[i];
            }
            Keep(acc);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) acc += batchkern::Sum(v, batch);
            Keep(acc);
          }));
    }
    {
      double lo = v[0], hi = v[0];
      out.push_back(Measure(
          "minmax", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) {
                if (v[i] < lo) lo = v[i];
                if (v[i] > hi) hi = v[i];
              }
            }
            Keep(lo);
            Keep(hi);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) batchkern::MinMax(v, batch, &lo, &hi);
            Keep(lo);
            Keep(hi);
          }));
    }
    {
      WelfordStats a, b;
      out.push_back(Measure(
          "welford_double", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.Add(v[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddBatch(v, batch);
            Keep(b);
          }));
    }
    {
      NicWelfordStats a, b;
      out.push_back(Measure(
          "welford_nic", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.Add(sizes_i[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddBatch(sizes_i.data(), batch);
            Keep(b);
          }));
    }
    {
      DampedStats a(1.0, DampedMode::kNicFixedPoint), b(1.0, DampedMode::kNicFixedPoint);
      out.push_back(Measure(
          "damped_fixed", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.Add(v[i], ts[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddBatch(v, ts, batch);
            Keep(b);
          }));
    }
    {
      HyperLogLog a(10), b(10);
      out.push_back(Measure(
          "hll", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.AddU64(flows[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddU64Batch(flows.data(), batch);
            Keep(b);
          }));
    }
    {
      FixedHistogram a(100.0, 16), b(100.0, 16);
      out.push_back(Measure(
          "histogram", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.Add(v[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddBatch(v, batch);
            Keep(b);
          }));
    }
    {  // ft_percent log2 bucketer, scalar bit-trick vs vectorized batch.
      out.push_back(Measure(
          "log_bucket", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) {
                buckets[i] = batchkern::Log2Bucket(v[i]);
              }
              Keep(buckets);
            }
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              batchkern::Log2BucketBatch(v, batch, buckets.data());
              Keep(buckets);
            }
          }));
    }
    {  // The HLL Mix64 hash on its own (feeds AddU64Batch).
      out.push_back(Measure(
          "hash_u64", batch,
          [&](size_t reps) {
            HyperLogLog h(10);
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) h.AddU64(flows[i] ^ r);
              Keep(h);
            }
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              batchkern::HashU64Batch(flows.data(), batch, hashes.data());
              Keep(hashes);
            }
          }));
    }
    {
      StreamingMoments a, b;
      out.push_back(Measure(
          "moments", batch,
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) {
              for (size_t i = 0; i < batch; ++i) a.Add(v[i]);
            }
            Keep(a);
          },
          [&](size_t reps) {
            for (size_t r = 0; r < reps; ++r) b.AddBatch(v, batch);
            Keep(b);
          }));
    }
  }
  return out;
}

int Run() {
  const std::vector<Measurement> results = RunAll();
  const char* simd = SimdLevelName(ActiveSimdLevel());
  const unsigned host_cpus = std::thread::hardware_concurrency();

  AsciiTable table({"Kernel", "Batch", "Scalar ns/elem", "Batch ns/elem", "Speedup"});
  for (const auto& m : results) {
    table.AddRow({m.kernel, std::to_string(m.batch),
                  AsciiTable::Num(m.scalar_ns_per_elem, 3),
                  AsciiTable::Num(m.batch_ns_per_elem, 3),
                  AsciiTable::Num(m.speedup, 2) + "x"});
  }
  std::printf("feature kernels: batch AddBatch() vs per-element Add() "
              "(simd=%s, cpus=%u)\n", simd, host_cpus);
  table.Print();

  std::ofstream out("BENCH_feature_kernels.json");
  JsonWriter w(out);
  w.BeginObject();
  w.FieldStr("bench", "feature_kernels");
  w.FieldUint("host_cpus", host_cpus);
  w.FieldStr("simd_level", simd);
  w.FieldUint("rounds", kRounds);
  w.FieldUint("elems_per_round", kElemsPerRound);
  w.Key("results");
  w.BeginArray();
  for (const auto& m : results) {
    w.BeginObject();
    w.FieldStr("kernel", m.kernel);
    w.FieldUint("batch", m.batch);
    w.FieldDouble("scalar_ns_per_elem", m.scalar_ns_per_elem);
    w.FieldDouble("batch_ns_per_elem", m.batch_ns_per_elem);
    w.FieldDouble("speedup", m.speedup);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_feature_kernels.json\n");
    return 1;
  }
  std::printf("wrote BENCH_feature_kernels.json\n");
  return 0;
}

}  // namespace
}  // namespace superfe

int main() { return superfe::Run(); }
