# Empty compiler generated dependencies file for dependency_graph.
# This may be replaced when dependencies are built.
