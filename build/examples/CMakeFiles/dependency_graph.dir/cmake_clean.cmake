file(REMOVE_RECURSE
  "CMakeFiles/dependency_graph.dir/dependency_graph.cpp.o"
  "CMakeFiles/dependency_graph.dir/dependency_graph.cpp.o.d"
  "dependency_graph"
  "dependency_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
