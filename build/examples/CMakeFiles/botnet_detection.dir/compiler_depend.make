# Empty compiler generated dependencies file for botnet_detection.
# This may be replaced when dependencies are built.
