file(REMOVE_RECURSE
  "CMakeFiles/botnet_detection.dir/botnet_detection.cpp.o"
  "CMakeFiles/botnet_detection.dir/botnet_detection.cpp.o.d"
  "botnet_detection"
  "botnet_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
