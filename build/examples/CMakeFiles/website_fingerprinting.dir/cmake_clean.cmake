file(REMOVE_RECURSE
  "CMakeFiles/website_fingerprinting.dir/website_fingerprinting.cpp.o"
  "CMakeFiles/website_fingerprinting.dir/website_fingerprinting.cpp.o.d"
  "website_fingerprinting"
  "website_fingerprinting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/website_fingerprinting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
