# Empty compiler generated dependencies file for website_fingerprinting.
# This may be replaced when dependencies are built.
