# Empty dependencies file for covert_channel.
# This may be replaced when dependencies are built.
