# Empty compiler generated dependencies file for covert_channel.
# This may be replaced when dependencies are built.
