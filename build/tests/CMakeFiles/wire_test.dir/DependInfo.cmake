
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wire_test.cc" "tests/CMakeFiles/wire_test.dir/wire_test.cc.o" "gcc" "tests/CMakeFiles/wire_test.dir/wire_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/superfe_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/superfe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/superfe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nicsim/CMakeFiles/superfe_nicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/superfe_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/superfe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/superfe_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/superfe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
