file(REMOVE_RECURSE
  "CMakeFiles/streaming_property_test.dir/streaming_property_test.cc.o"
  "CMakeFiles/streaming_property_test.dir/streaming_property_test.cc.o.d"
  "streaming_property_test"
  "streaming_property_test.pdb"
  "streaming_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
