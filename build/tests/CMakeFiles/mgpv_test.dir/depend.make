# Empty dependencies file for mgpv_test.
# This may be replaced when dependencies are built.
