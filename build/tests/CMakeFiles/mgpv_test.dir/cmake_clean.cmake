file(REMOVE_RECURSE
  "CMakeFiles/mgpv_test.dir/mgpv_test.cc.o"
  "CMakeFiles/mgpv_test.dir/mgpv_test.cc.o.d"
  "mgpv_test"
  "mgpv_test.pdb"
  "mgpv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgpv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
