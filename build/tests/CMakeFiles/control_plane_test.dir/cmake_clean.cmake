file(REMOVE_RECURSE
  "CMakeFiles/control_plane_test.dir/control_plane_test.cc.o"
  "CMakeFiles/control_plane_test.dir/control_plane_test.cc.o.d"
  "control_plane_test"
  "control_plane_test.pdb"
  "control_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
