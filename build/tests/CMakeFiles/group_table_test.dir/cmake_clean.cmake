file(REMOVE_RECURSE
  "CMakeFiles/group_table_test.dir/group_table_test.cc.o"
  "CMakeFiles/group_table_test.dir/group_table_test.cc.o.d"
  "group_table_test"
  "group_table_test.pdb"
  "group_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
