# Empty dependencies file for group_table_test.
# This may be replaced when dependencies are built.
