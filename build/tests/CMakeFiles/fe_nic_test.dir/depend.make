# Empty dependencies file for fe_nic_test.
# This may be replaced when dependencies are built.
