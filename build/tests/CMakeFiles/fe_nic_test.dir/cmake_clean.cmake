file(REMOVE_RECURSE
  "CMakeFiles/fe_nic_test.dir/fe_nic_test.cc.o"
  "CMakeFiles/fe_nic_test.dir/fe_nic_test.cc.o.d"
  "fe_nic_test"
  "fe_nic_test.pdb"
  "fe_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
