file(REMOVE_RECURSE
  "CMakeFiles/fe_switch_frame_test.dir/fe_switch_frame_test.cc.o"
  "CMakeFiles/fe_switch_frame_test.dir/fe_switch_frame_test.cc.o.d"
  "fe_switch_frame_test"
  "fe_switch_frame_test.pdb"
  "fe_switch_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_switch_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
