# Empty dependencies file for fe_switch_frame_test.
# This may be replaced when dependencies are built.
