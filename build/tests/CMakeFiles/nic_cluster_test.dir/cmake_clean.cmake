file(REMOVE_RECURSE
  "CMakeFiles/nic_cluster_test.dir/nic_cluster_test.cc.o"
  "CMakeFiles/nic_cluster_test.dir/nic_cluster_test.cc.o.d"
  "nic_cluster_test"
  "nic_cluster_test.pdb"
  "nic_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
