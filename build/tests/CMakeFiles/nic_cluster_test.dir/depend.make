# Empty dependencies file for nic_cluster_test.
# This may be replaced when dependencies are built.
