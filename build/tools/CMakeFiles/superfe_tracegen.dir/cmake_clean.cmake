file(REMOVE_RECURSE
  "CMakeFiles/superfe_tracegen.dir/superfe_tracegen.cc.o"
  "CMakeFiles/superfe_tracegen.dir/superfe_tracegen.cc.o.d"
  "superfe_tracegen"
  "superfe_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
