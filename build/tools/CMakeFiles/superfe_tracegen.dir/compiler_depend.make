# Empty compiler generated dependencies file for superfe_tracegen.
# This may be replaced when dependencies are built.
