file(REMOVE_RECURSE
  "CMakeFiles/superfe_compile.dir/superfe_compile.cc.o"
  "CMakeFiles/superfe_compile.dir/superfe_compile.cc.o.d"
  "superfe_compile"
  "superfe_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
