# Empty dependencies file for superfe_compile.
# This may be replaced when dependencies are built.
