# Empty compiler generated dependencies file for superfe_run.
# This may be replaced when dependencies are built.
