file(REMOVE_RECURSE
  "CMakeFiles/superfe_run.dir/superfe_run.cc.o"
  "CMakeFiles/superfe_run.dir/superfe_run.cc.o.d"
  "superfe_run"
  "superfe_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
