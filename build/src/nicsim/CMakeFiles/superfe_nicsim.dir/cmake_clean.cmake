file(REMOVE_RECURSE
  "CMakeFiles/superfe_nicsim.dir/cost_model.cc.o"
  "CMakeFiles/superfe_nicsim.dir/cost_model.cc.o.d"
  "CMakeFiles/superfe_nicsim.dir/exec.cc.o"
  "CMakeFiles/superfe_nicsim.dir/exec.cc.o.d"
  "CMakeFiles/superfe_nicsim.dir/fe_nic.cc.o"
  "CMakeFiles/superfe_nicsim.dir/fe_nic.cc.o.d"
  "CMakeFiles/superfe_nicsim.dir/microc_gen.cc.o"
  "CMakeFiles/superfe_nicsim.dir/microc_gen.cc.o.d"
  "CMakeFiles/superfe_nicsim.dir/nic_cluster.cc.o"
  "CMakeFiles/superfe_nicsim.dir/nic_cluster.cc.o.d"
  "CMakeFiles/superfe_nicsim.dir/placement.cc.o"
  "CMakeFiles/superfe_nicsim.dir/placement.cc.o.d"
  "libsuperfe_nicsim.a"
  "libsuperfe_nicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_nicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
