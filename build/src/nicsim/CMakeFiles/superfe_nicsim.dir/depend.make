# Empty dependencies file for superfe_nicsim.
# This may be replaced when dependencies are built.
