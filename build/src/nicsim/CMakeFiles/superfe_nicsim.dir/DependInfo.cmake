
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nicsim/cost_model.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/cost_model.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/cost_model.cc.o.d"
  "/root/repo/src/nicsim/exec.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/exec.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/exec.cc.o.d"
  "/root/repo/src/nicsim/fe_nic.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/fe_nic.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/fe_nic.cc.o.d"
  "/root/repo/src/nicsim/microc_gen.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/microc_gen.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/microc_gen.cc.o.d"
  "/root/repo/src/nicsim/nic_cluster.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/nic_cluster.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/nic_cluster.cc.o.d"
  "/root/repo/src/nicsim/placement.cc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/placement.cc.o" "gcc" "src/nicsim/CMakeFiles/superfe_nicsim.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/superfe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/superfe_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/superfe_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/superfe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
