file(REMOVE_RECURSE
  "libsuperfe_nicsim.a"
)
