# Empty dependencies file for superfe_common.
# This may be replaced when dependencies are built.
