file(REMOVE_RECURSE
  "libsuperfe_common.a"
)
