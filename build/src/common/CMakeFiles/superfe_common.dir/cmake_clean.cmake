file(REMOVE_RECURSE
  "CMakeFiles/superfe_common.dir/hash.cc.o"
  "CMakeFiles/superfe_common.dir/hash.cc.o.d"
  "CMakeFiles/superfe_common.dir/logging.cc.o"
  "CMakeFiles/superfe_common.dir/logging.cc.o.d"
  "CMakeFiles/superfe_common.dir/rng.cc.o"
  "CMakeFiles/superfe_common.dir/rng.cc.o.d"
  "CMakeFiles/superfe_common.dir/stats.cc.o"
  "CMakeFiles/superfe_common.dir/stats.cc.o.d"
  "CMakeFiles/superfe_common.dir/status.cc.o"
  "CMakeFiles/superfe_common.dir/status.cc.o.d"
  "CMakeFiles/superfe_common.dir/table.cc.o"
  "CMakeFiles/superfe_common.dir/table.cc.o.d"
  "libsuperfe_common.a"
  "libsuperfe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
