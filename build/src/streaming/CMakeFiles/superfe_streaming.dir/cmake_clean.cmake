file(REMOVE_RECURSE
  "CMakeFiles/superfe_streaming.dir/damped.cc.o"
  "CMakeFiles/superfe_streaming.dir/damped.cc.o.d"
  "CMakeFiles/superfe_streaming.dir/histogram.cc.o"
  "CMakeFiles/superfe_streaming.dir/histogram.cc.o.d"
  "CMakeFiles/superfe_streaming.dir/hyperloglog.cc.o"
  "CMakeFiles/superfe_streaming.dir/hyperloglog.cc.o.d"
  "CMakeFiles/superfe_streaming.dir/moments.cc.o"
  "CMakeFiles/superfe_streaming.dir/moments.cc.o.d"
  "CMakeFiles/superfe_streaming.dir/naive.cc.o"
  "CMakeFiles/superfe_streaming.dir/naive.cc.o.d"
  "CMakeFiles/superfe_streaming.dir/welford.cc.o"
  "CMakeFiles/superfe_streaming.dir/welford.cc.o.d"
  "libsuperfe_streaming.a"
  "libsuperfe_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
