file(REMOVE_RECURSE
  "libsuperfe_streaming.a"
)
