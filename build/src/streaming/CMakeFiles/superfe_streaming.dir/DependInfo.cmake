
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/damped.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/damped.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/damped.cc.o.d"
  "/root/repo/src/streaming/histogram.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/histogram.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/histogram.cc.o.d"
  "/root/repo/src/streaming/hyperloglog.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/hyperloglog.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/hyperloglog.cc.o.d"
  "/root/repo/src/streaming/moments.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/moments.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/moments.cc.o.d"
  "/root/repo/src/streaming/naive.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/naive.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/naive.cc.o.d"
  "/root/repo/src/streaming/welford.cc" "src/streaming/CMakeFiles/superfe_streaming.dir/welford.cc.o" "gcc" "src/streaming/CMakeFiles/superfe_streaming.dir/welford.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
