# Empty compiler generated dependencies file for superfe_streaming.
# This may be replaced when dependencies are built.
