file(REMOVE_RECURSE
  "CMakeFiles/superfe_switchsim.dir/control_plane.cc.o"
  "CMakeFiles/superfe_switchsim.dir/control_plane.cc.o.d"
  "CMakeFiles/superfe_switchsim.dir/fe_switch.cc.o"
  "CMakeFiles/superfe_switchsim.dir/fe_switch.cc.o.d"
  "CMakeFiles/superfe_switchsim.dir/group_key.cc.o"
  "CMakeFiles/superfe_switchsim.dir/group_key.cc.o.d"
  "CMakeFiles/superfe_switchsim.dir/mgpv.cc.o"
  "CMakeFiles/superfe_switchsim.dir/mgpv.cc.o.d"
  "CMakeFiles/superfe_switchsim.dir/p4gen.cc.o"
  "CMakeFiles/superfe_switchsim.dir/p4gen.cc.o.d"
  "CMakeFiles/superfe_switchsim.dir/resources.cc.o"
  "CMakeFiles/superfe_switchsim.dir/resources.cc.o.d"
  "libsuperfe_switchsim.a"
  "libsuperfe_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
