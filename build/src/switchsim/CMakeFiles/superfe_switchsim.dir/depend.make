# Empty dependencies file for superfe_switchsim.
# This may be replaced when dependencies are built.
