file(REMOVE_RECURSE
  "libsuperfe_switchsim.a"
)
