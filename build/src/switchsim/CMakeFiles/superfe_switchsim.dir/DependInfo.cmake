
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/control_plane.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/control_plane.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/control_plane.cc.o.d"
  "/root/repo/src/switchsim/fe_switch.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/fe_switch.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/fe_switch.cc.o.d"
  "/root/repo/src/switchsim/group_key.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/group_key.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/group_key.cc.o.d"
  "/root/repo/src/switchsim/mgpv.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/mgpv.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/mgpv.cc.o.d"
  "/root/repo/src/switchsim/p4gen.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/p4gen.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/p4gen.cc.o.d"
  "/root/repo/src/switchsim/resources.cc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/resources.cc.o" "gcc" "src/switchsim/CMakeFiles/superfe_switchsim.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/superfe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/superfe_policy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
