# Empty compiler generated dependencies file for superfe_ml.
# This may be replaced when dependencies are built.
