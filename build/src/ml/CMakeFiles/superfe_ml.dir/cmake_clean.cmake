file(REMOVE_RECURSE
  "CMakeFiles/superfe_ml.dir/autoencoder.cc.o"
  "CMakeFiles/superfe_ml.dir/autoencoder.cc.o.d"
  "CMakeFiles/superfe_ml.dir/decision_tree.cc.o"
  "CMakeFiles/superfe_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/superfe_ml.dir/kitnet.cc.o"
  "CMakeFiles/superfe_ml.dir/kitnet.cc.o.d"
  "CMakeFiles/superfe_ml.dir/knn.cc.o"
  "CMakeFiles/superfe_ml.dir/knn.cc.o.d"
  "CMakeFiles/superfe_ml.dir/metrics.cc.o"
  "CMakeFiles/superfe_ml.dir/metrics.cc.o.d"
  "CMakeFiles/superfe_ml.dir/random_forest.cc.o"
  "CMakeFiles/superfe_ml.dir/random_forest.cc.o.d"
  "libsuperfe_ml.a"
  "libsuperfe_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
