file(REMOVE_RECURSE
  "libsuperfe_ml.a"
)
