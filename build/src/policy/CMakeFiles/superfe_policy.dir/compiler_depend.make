# Empty compiler generated dependencies file for superfe_policy.
# This may be replaced when dependencies are built.
