file(REMOVE_RECURSE
  "libsuperfe_policy.a"
)
