file(REMOVE_RECURSE
  "CMakeFiles/superfe_policy.dir/ast.cc.o"
  "CMakeFiles/superfe_policy.dir/ast.cc.o.d"
  "CMakeFiles/superfe_policy.dir/builder.cc.o"
  "CMakeFiles/superfe_policy.dir/builder.cc.o.d"
  "CMakeFiles/superfe_policy.dir/compile.cc.o"
  "CMakeFiles/superfe_policy.dir/compile.cc.o.d"
  "CMakeFiles/superfe_policy.dir/functions.cc.o"
  "CMakeFiles/superfe_policy.dir/functions.cc.o.d"
  "CMakeFiles/superfe_policy.dir/granularity_graph.cc.o"
  "CMakeFiles/superfe_policy.dir/granularity_graph.cc.o.d"
  "CMakeFiles/superfe_policy.dir/parser.cc.o"
  "CMakeFiles/superfe_policy.dir/parser.cc.o.d"
  "libsuperfe_policy.a"
  "libsuperfe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
