
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/ast.cc" "src/policy/CMakeFiles/superfe_policy.dir/ast.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/ast.cc.o.d"
  "/root/repo/src/policy/builder.cc" "src/policy/CMakeFiles/superfe_policy.dir/builder.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/builder.cc.o.d"
  "/root/repo/src/policy/compile.cc" "src/policy/CMakeFiles/superfe_policy.dir/compile.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/compile.cc.o.d"
  "/root/repo/src/policy/functions.cc" "src/policy/CMakeFiles/superfe_policy.dir/functions.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/functions.cc.o.d"
  "/root/repo/src/policy/granularity_graph.cc" "src/policy/CMakeFiles/superfe_policy.dir/granularity_graph.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/granularity_graph.cc.o.d"
  "/root/repo/src/policy/parser.cc" "src/policy/CMakeFiles/superfe_policy.dir/parser.cc.o" "gcc" "src/policy/CMakeFiles/superfe_policy.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/superfe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
