file(REMOVE_RECURSE
  "CMakeFiles/superfe_apps.dir/kitsune_study.cc.o"
  "CMakeFiles/superfe_apps.dir/kitsune_study.cc.o.d"
  "CMakeFiles/superfe_apps.dir/policies.cc.o"
  "CMakeFiles/superfe_apps.dir/policies.cc.o.d"
  "libsuperfe_apps.a"
  "libsuperfe_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
