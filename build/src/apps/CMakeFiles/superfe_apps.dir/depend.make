# Empty dependencies file for superfe_apps.
# This may be replaced when dependencies are built.
