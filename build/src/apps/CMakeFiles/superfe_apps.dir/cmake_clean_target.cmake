file(REMOVE_RECURSE
  "libsuperfe_apps.a"
)
