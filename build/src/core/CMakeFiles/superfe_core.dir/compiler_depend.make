# Empty compiler generated dependencies file for superfe_core.
# This may be replaced when dependencies are built.
