file(REMOVE_RECURSE
  "libsuperfe_core.a"
)
