file(REMOVE_RECURSE
  "CMakeFiles/superfe_core.dir/runtime.cc.o"
  "CMakeFiles/superfe_core.dir/runtime.cc.o.d"
  "CMakeFiles/superfe_core.dir/software_extractor.cc.o"
  "CMakeFiles/superfe_core.dir/software_extractor.cc.o.d"
  "libsuperfe_core.a"
  "libsuperfe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
