
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/attack_gen.cc" "src/net/CMakeFiles/superfe_net.dir/attack_gen.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/attack_gen.cc.o.d"
  "/root/repo/src/net/five_tuple.cc" "src/net/CMakeFiles/superfe_net.dir/five_tuple.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/five_tuple.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/superfe_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/superfe_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/replay.cc" "src/net/CMakeFiles/superfe_net.dir/replay.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/replay.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/net/CMakeFiles/superfe_net.dir/trace.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/trace.cc.o.d"
  "/root/repo/src/net/trace_gen.cc" "src/net/CMakeFiles/superfe_net.dir/trace_gen.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/trace_gen.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/net/CMakeFiles/superfe_net.dir/wire.cc.o" "gcc" "src/net/CMakeFiles/superfe_net.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/superfe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
