# Empty compiler generated dependencies file for superfe_net.
# This may be replaced when dependencies are built.
