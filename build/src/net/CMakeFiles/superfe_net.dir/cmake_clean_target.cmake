file(REMOVE_RECURSE
  "libsuperfe_net.a"
)
