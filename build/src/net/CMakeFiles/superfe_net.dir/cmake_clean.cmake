file(REMOVE_RECURSE
  "CMakeFiles/superfe_net.dir/attack_gen.cc.o"
  "CMakeFiles/superfe_net.dir/attack_gen.cc.o.d"
  "CMakeFiles/superfe_net.dir/five_tuple.cc.o"
  "CMakeFiles/superfe_net.dir/five_tuple.cc.o.d"
  "CMakeFiles/superfe_net.dir/packet.cc.o"
  "CMakeFiles/superfe_net.dir/packet.cc.o.d"
  "CMakeFiles/superfe_net.dir/pcap.cc.o"
  "CMakeFiles/superfe_net.dir/pcap.cc.o.d"
  "CMakeFiles/superfe_net.dir/replay.cc.o"
  "CMakeFiles/superfe_net.dir/replay.cc.o.d"
  "CMakeFiles/superfe_net.dir/trace.cc.o"
  "CMakeFiles/superfe_net.dir/trace.cc.o.d"
  "CMakeFiles/superfe_net.dir/trace_gen.cc.o"
  "CMakeFiles/superfe_net.dir/trace_gen.cc.o.d"
  "CMakeFiles/superfe_net.dir/wire.cc.o"
  "CMakeFiles/superfe_net.dir/wire.cc.o.d"
  "libsuperfe_net.a"
  "libsuperfe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
