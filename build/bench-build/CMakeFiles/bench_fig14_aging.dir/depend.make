# Empty dependencies file for bench_fig14_aging.
# This may be replaced when dependencies are built.
