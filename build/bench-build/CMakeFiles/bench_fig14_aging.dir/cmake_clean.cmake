file(REMOVE_RECURSE
  "../bench/bench_fig14_aging"
  "../bench/bench_fig14_aging.pdb"
  "CMakeFiles/bench_fig14_aging.dir/bench_fig14_aging.cc.o"
  "CMakeFiles/bench_fig14_aging.dir/bench_fig14_aging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
