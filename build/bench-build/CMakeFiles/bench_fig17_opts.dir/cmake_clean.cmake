file(REMOVE_RECURSE
  "../bench/bench_fig17_opts"
  "../bench/bench_fig17_opts.pdb"
  "CMakeFiles/bench_fig17_opts.dir/bench_fig17_opts.cc.o"
  "CMakeFiles/bench_fig17_opts.dir/bench_fig17_opts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
