# Empty compiler generated dependencies file for bench_fig17_opts.
# This may be replaced when dependencies are built.
