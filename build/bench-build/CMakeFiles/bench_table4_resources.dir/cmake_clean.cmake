file(REMOVE_RECURSE
  "../bench/bench_table4_resources"
  "../bench/bench_table4_resources.pdb"
  "CMakeFiles/bench_table4_resources.dir/bench_table4_resources.cc.o"
  "CMakeFiles/bench_table4_resources.dir/bench_table4_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
