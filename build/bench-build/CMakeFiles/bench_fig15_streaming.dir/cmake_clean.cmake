file(REMOVE_RECURSE
  "../bench/bench_fig15_streaming"
  "../bench/bench_fig15_streaming.pdb"
  "CMakeFiles/bench_fig15_streaming.dir/bench_fig15_streaming.cc.o"
  "CMakeFiles/bench_fig15_streaming.dir/bench_fig15_streaming.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
