# Empty dependencies file for bench_fig15_streaming.
# This may be replaced when dependencies are built.
