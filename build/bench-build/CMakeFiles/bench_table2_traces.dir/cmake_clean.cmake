file(REMOVE_RECURSE
  "../bench/bench_table2_traces"
  "../bench/bench_table2_traces.pdb"
  "CMakeFiles/bench_table2_traces.dir/bench_table2_traces.cc.o"
  "CMakeFiles/bench_table2_traces.dir/bench_table2_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
