# Empty dependencies file for bench_table3_policies.
# This may be replaced when dependencies are built.
