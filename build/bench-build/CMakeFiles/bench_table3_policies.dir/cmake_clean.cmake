file(REMOVE_RECURSE
  "../bench/bench_table3_policies"
  "../bench/bench_table3_policies.pdb"
  "CMakeFiles/bench_table3_policies.dir/bench_table3_policies.cc.o"
  "CMakeFiles/bench_table3_policies.dir/bench_table3_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
