file(REMOVE_RECURSE
  "../bench/bench_table5_functions"
  "../bench/bench_table5_functions.pdb"
  "CMakeFiles/bench_table5_functions.dir/bench_table5_functions.cc.o"
  "CMakeFiles/bench_table5_functions.dir/bench_table5_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
