# Empty dependencies file for bench_fig12_aggregation.
# This may be replaced when dependencies are built.
