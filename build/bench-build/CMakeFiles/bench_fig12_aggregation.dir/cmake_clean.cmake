file(REMOVE_RECURSE
  "../bench/bench_fig12_aggregation"
  "../bench/bench_fig12_aggregation.pdb"
  "CMakeFiles/bench_fig12_aggregation.dir/bench_fig12_aggregation.cc.o"
  "CMakeFiles/bench_fig12_aggregation.dir/bench_fig12_aggregation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
