# Empty compiler generated dependencies file for bench_fig13_mgpv_gpv.
# This may be replaced when dependencies are built.
