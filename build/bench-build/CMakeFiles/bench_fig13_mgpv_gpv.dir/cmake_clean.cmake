file(REMOVE_RECURSE
  "../bench/bench_fig13_mgpv_gpv"
  "../bench/bench_fig13_mgpv_gpv.pdb"
  "CMakeFiles/bench_fig13_mgpv_gpv.dir/bench_fig13_mgpv_gpv.cc.o"
  "CMakeFiles/bench_fig13_mgpv_gpv.dir/bench_fig13_mgpv_gpv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mgpv_gpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
