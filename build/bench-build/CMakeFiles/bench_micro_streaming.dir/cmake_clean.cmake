file(REMOVE_RECURSE
  "../bench/bench_micro_streaming"
  "../bench/bench_micro_streaming.pdb"
  "CMakeFiles/bench_micro_streaming.dir/bench_micro_streaming.cc.o"
  "CMakeFiles/bench_micro_streaming.dir/bench_micro_streaming.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
