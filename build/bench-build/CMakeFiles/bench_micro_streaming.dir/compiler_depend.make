# Empty compiler generated dependencies file for bench_micro_streaming.
# This may be replaced when dependencies are built.
